//! Multi-node shard-subset serving: peer specs and the remote-row client.
//!
//! One machine stops being enough exactly when the paper's products get
//! interesting: a trillion-entry CSR run directory does not fit one
//! node's disks or page cache. The cluster answer keeps the wire protocol
//! and the run-directory format unchanged and splits only *residency*:
//! each node opens a contiguous **shard subset**
//! ([`kron_stream::ShardSet::open_subset`]) of the same run directory and
//! serves every query it receives — local rows zero-copy off its own
//! mappings, non-resident rows fetched from the owning peer over the
//! internal `GET /row?shard=S&v=V` endpoint (a raw little-endian `u64`
//! row; see `ARCHITECTURE.md` § "Cluster serving" for the normative wire
//! format).
//!
//! The **ownership map** has two layers, both static:
//!
//! * *shard → vertex range* comes from the run directory's manifests —
//!   every node reads all of them (they are small JSON files), so routing
//!   any product vertex to its owning shard needs no network round trip;
//! * *shard → node* comes from the command line: each node is started
//!   with `--shards a..b` (its own claim) and `--peers a..b=ADDR,…`
//!   ([`PeerSpec`]) for every other node. The claim plus the peer ranges
//!   must tile `0..shards` disjointly, or the engine refuses to open —
//!   a cluster with an ownership gap would otherwise fail at query time.
//!
//! Peers are contacted lazily (first non-resident row fetch), so nodes
//! can start in any order. Fetched rows flow through the engine's
//! hot-row [`crate::RowCache`] when one is configured — remote rows are
//! exactly the expensive-fetch case the LRU exists for.
//!
//! ## Example
//!
//! ```
//! use kron_serve::PeerSpec;
//!
//! let peers = PeerSpec::parse_list("0..2=10.0.0.1:8080,2..4=10.0.0.2:8080").unwrap();
//! assert_eq!(peers.len(), 2);
//! assert_eq!(peers[0].shards, 0..2);
//! assert_eq!(peers[1].addr, "10.0.0.2:8080");
//! assert_eq!(peers[1].to_string(), "2..4=10.0.0.2:8080");
//! ```

use crate::engine::ServeError;
use crate::http::Client;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default node-to-node fetch timeout (connect and read): long enough
/// for a loaded peer, short enough that a dead one surfaces as a bounded
/// [`ServeError::Remote`] instead of a stalled query.
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_secs(5);

/// One peer of a cluster node: the contiguous shard range it serves and
/// the address its server listens on.
///
/// The CLI spelling is `a..b=HOST:PORT` (`a..b` end-exclusive, matching
/// the manifests' ranges); `--peers` takes a comma-separated list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerSpec {
    /// The run-wide shard indices `[start, end)` this peer serves.
    pub shards: Range<usize>,
    /// The peer's `host:port`.
    pub addr: String,
}

/// Parse a shard range spelled `a..b` (end-exclusive, `a < b`).
///
/// # Errors
///
/// Returns a message naming the offending token when the spelling is not
/// `a..b` with integers `a < b`.
pub fn parse_shard_range(s: &str) -> Result<Range<usize>, String> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| format!("shard range {s:?} must be spelled a..b (end-exclusive)"))?;
    let parse = |tok: &str| -> Result<usize, String> {
        tok.parse()
            .map_err(|_| format!("shard range {s:?}: {tok:?} is not a shard index"))
    };
    let (lo, hi) = (parse(lo)?, parse(hi)?);
    if lo >= hi {
        return Err(format!("shard range {s:?} is empty (need a < b)"));
    }
    Ok(lo..hi)
}

impl PeerSpec {
    /// Parse one `a..b=HOST:PORT` spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token when the range or
    /// address part is missing or malformed.
    pub fn parse(s: &str) -> Result<PeerSpec, String> {
        let (range, addr) = s
            .split_once('=')
            .ok_or_else(|| format!("peer {s:?} must be spelled a..b=HOST:PORT"))?;
        let shards = parse_shard_range(range)?;
        if addr.is_empty() {
            return Err(format!("peer {s:?} has an empty address"));
        }
        Ok(PeerSpec {
            shards,
            addr: addr.to_string(),
        })
    }

    /// Parse a comma-separated `--peers` list.
    ///
    /// # Errors
    ///
    /// Returns the first per-entry [`PeerSpec::parse`] failure, or a
    /// message for an empty list.
    pub fn parse_list(s: &str) -> Result<Vec<PeerSpec>, String> {
        let specs: Vec<PeerSpec> = s
            .split(',')
            .filter(|t| !t.is_empty())
            .map(PeerSpec::parse)
            .collect::<Result<_, _>>()?;
        if specs.is_empty() {
            return Err("peer list is empty".into());
        }
        Ok(specs)
    }
}

impl std::fmt::Display for PeerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}..{}={}",
            self.shards.start, self.shards.end, self.addr
        )
    }
}

/// The remote side of a cluster node's engine: shard → peer resolution
/// plus a small per-peer pool of keep-alive [`Client`] connections.
///
/// Fetches are blocking with a bounded timeout; a transport failure is
/// retried once on a fresh connection (the peer may have restarted and
/// the pooled connection gone stale) before surfacing as
/// [`ServeError::Remote`].
pub(crate) struct RemoteShards {
    peers: Vec<RemotePeer>,
    /// Run-wide shard index → index into `peers` (`None` = resident
    /// locally).
    by_shard: Vec<Option<usize>>,
    timeout: Duration,
}

struct RemotePeer {
    spec: PeerSpec,
    /// Idle keep-alive connections to this peer; fetches pop one (or
    /// dial) and push it back on success, so concurrent batch workers
    /// fan out over parallel connections instead of serializing.
    pool: Mutex<Vec<Client>>,
}

impl std::fmt::Debug for RemoteShards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShards")
            .field(
                "peers",
                &self
                    .peers
                    .iter()
                    .map(|p| p.spec.to_string())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl RemoteShards {
    /// Build the shard → peer table, enforcing that `own` plus the peer
    /// ranges tile `0..num_shards` disjointly (the complete ownership
    /// map).
    pub(crate) fn new(
        specs: &[PeerSpec],
        own: Range<usize>,
        num_shards: usize,
        timeout: Duration,
    ) -> Result<RemoteShards, ServeError> {
        let mut by_shard: Vec<Option<usize>> = vec![None; num_shards];
        let mut claimed = vec![false; num_shards];
        for s in own.clone() {
            claimed[s] = true;
        }
        for (i, spec) in specs.iter().enumerate() {
            if spec.shards.end > num_shards {
                return Err(ServeError::Open(format!(
                    "peer {spec}: run has only {num_shards} shards"
                )));
            }
            for s in spec.shards.clone() {
                if claimed[s] {
                    return Err(ServeError::Open(format!(
                        "ownership map overlap: shard {s} claimed by peer {spec} is \
                         already owned (own range {}..{} or an earlier peer)",
                        own.start, own.end
                    )));
                }
                claimed[s] = true;
                by_shard[s] = Some(i);
            }
        }
        if let Some(gap) = claimed.iter().position(|&c| !c) {
            return Err(ServeError::Open(format!(
                "ownership map incomplete: shard {gap} is neither resident \
                 (own range {}..{}) nor assigned to any --peers entry",
                own.start, own.end
            )));
        }
        Ok(RemoteShards {
            peers: specs
                .iter()
                .map(|spec| RemotePeer {
                    spec: spec.clone(),
                    pool: Mutex::new(Vec::new()),
                })
                .collect(),
            by_shard,
            timeout,
        })
    }

    /// The configured peer specs, in `--peers` order.
    pub(crate) fn specs(&self) -> Vec<PeerSpec> {
        self.peers.iter().map(|p| p.spec.clone()).collect()
    }

    /// Fetch the adjacency row of `v` from the peer owning `shard`.
    pub(crate) fn fetch(&self, shard: usize, v: u64) -> Result<Arc<[u64]>, ServeError> {
        let peer = &self.peers[self.by_shard[shard]
            .expect("fetch() is only called for shards the table maps to a peer")];
        let path = format!("/row?shard={shard}&v={v}");
        let fail = |detail: String| {
            ServeError::Remote(format!(
                "peer {} (/row shard {shard} v {v}): {detail}",
                peer.spec
            ))
        };
        // Pop a pooled keep-alive connection or dial a fresh one; retry a
        // transport failure once on a fresh dial (a pooled connection may
        // have gone stale across a peer restart).
        let pooled = peer.pool.lock().unwrap().pop();
        let had_pooled = pooled.is_some();
        let mut client = match pooled {
            Some(c) => c,
            None => Client::connect_timeout(peer.spec.addr.as_str(), self.timeout)
                .map_err(|e| fail(format!("connect: {e}")))?,
        };
        let (status, body) = match client.get_bytes(&path) {
            Ok(r) => r,
            Err(first) => {
                drop(client); // stale — never pool it again
                if !had_pooled {
                    return Err(fail(format!("fetch: {first}")));
                }
                client = Client::connect_timeout(peer.spec.addr.as_str(), self.timeout)
                    .map_err(|e| fail(format!("reconnect after {first}: {e}")))?;
                client
                    .get_bytes(&path)
                    .map_err(|e| fail(format!("fetch (retried): {e}")))?
            }
        };
        // The connection framed a full response either way — reusable.
        peer.pool.lock().unwrap().push(client);
        if status != 200 {
            // the peer's text/plain error body explains (not owned here /
            // out of range / malformed) — config skew between nodes
            return Err(fail(format!(
                "status {status}: {}",
                String::from_utf8_lossy(&body).trim()
            )));
        }
        if body.len() % 8 != 0 {
            return Err(fail(format!(
                "body of {} bytes is not a whole number of u64 words",
                body.len()
            )));
        }
        Ok(body
            .chunks_exact(8)
            .map(|w| u64::from_le_bytes(w.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_specs_parse_and_roundtrip() {
        let p = PeerSpec::parse("3..7=127.0.0.1:9000").unwrap();
        assert_eq!(p.shards, 3..7);
        assert_eq!(p.addr, "127.0.0.1:9000");
        assert_eq!(PeerSpec::parse(&p.to_string()).unwrap(), p);

        let list = PeerSpec::parse_list("0..1=a:1,1..2=b:2").unwrap();
        assert_eq!(list.len(), 2);

        for bad in [
            "0..1",     // no address
            "=x:1",     // no range
            "1..1=x:1", // empty range
            "2..1=x:1", // backwards
            "a..b=x:1", // not integers
            "0..1=",    // empty address
            "",         // empty list
        ] {
            assert!(
                PeerSpec::parse_list(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
        assert!(parse_shard_range("0-4").is_err(), "only a..b is accepted");
    }

    #[test]
    fn ownership_map_must_tile_disjointly() {
        let t = DEFAULT_PEER_TIMEOUT;
        let spec = |s: &str| PeerSpec::parse(s).unwrap();
        // complete: own 0..2, peers cover 2..6
        assert!(RemoteShards::new(&[spec("2..4=a:1"), spec("4..6=b:1")], 0..2, 6, t).is_ok());
        // gap: shard 5 unowned
        let err = RemoteShards::new(&[spec("2..5=a:1")], 0..2, 6, t).unwrap_err();
        assert!(err.to_string().contains("incomplete"), "{err}");
        assert!(err.to_string().contains("shard 5"), "{err}");
        // overlap with own range
        let err = RemoteShards::new(&[spec("1..6=a:1")], 0..2, 6, t).unwrap_err();
        assert!(err.to_string().contains("overlap"), "{err}");
        // overlap between peers
        let err = RemoteShards::new(&[spec("2..5=a:1"), spec("4..6=b:1")], 0..2, 6, t).unwrap_err();
        assert!(err.to_string().contains("overlap"), "{err}");
        // beyond the run
        let err = RemoteShards::new(&[spec("2..9=a:1")], 0..2, 6, t).unwrap_err();
        assert!(err.to_string().contains("only 6 shards"), "{err}");
    }

    #[test]
    fn unreachable_peer_is_a_bounded_remote_error() {
        let remote = RemoteShards::new(
            // port 1 on loopback: nothing listens there
            &[PeerSpec::parse("1..2=127.0.0.1:1").unwrap()],
            0..1,
            2,
            Duration::from_millis(200),
        )
        .unwrap();
        let err = remote.fetch(1, 5).unwrap_err();
        assert!(matches!(err, ServeError::Remote(_)), "{err}");
        assert!(err.to_string().contains("127.0.0.1:1"), "{err}");
    }
}
