//! The batched concurrent query driver and its latency/throughput report.
//!
//! A batch is a list of [`Query`] values (typically parsed from a query
//! file, one query per line — see [`parse_queries`]). [`run_batch`] fans
//! the batch out across worker threads (the shim rayon), each query
//! routing to its shard(s) independently, and collects per-query answers
//! *in input order* plus an aggregate [`QueryStats`] report.

use crate::engine::{AnswerSource, ServeEngine, ServeError};
use kron_stream::json::Json;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// One point query against the shard set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// `degree v` — degree of product vertex `v` (loops excluded).
    Degree(u64),
    /// `neighbors v` — the sorted adjacency row of `v`.
    Neighbors(u64),
    /// `has_edge u v` — whether `{u, v}` is an adjacency entry.
    HasEdge(u64, u64),
    /// `tri_vertex v` — triangle participation `t_C(v)`.
    VertexTriangles(u64),
    /// `tri_edge u v` — triangle participation `Δ_C[{u, v}]`.
    EdgeTriangles(u64, u64),
}

impl Query {
    /// Parse one query line: a keyword followed by vertex ids.
    ///
    /// Keywords: `degree v`, `neighbors v`, `has_edge u v`,
    /// `tri_vertex v`, `tri_edge u v`. Blank lines and `#` comments are
    /// handled by [`parse_queries`].
    ///
    /// # Errors
    ///
    /// A message naming the unknown keyword, the missing/extra argument,
    /// or the token that is not a vertex id (overflow is distinguished
    /// from malformed input — the server echoes these to remote clients).
    pub fn parse(line: &str) -> Result<Query, String> {
        let mut tok = line.split_whitespace();
        let kw = tok.next().ok_or("empty query")?;
        let mut arg = |name: &str| -> Result<u64, String> {
            let raw = tok
                .next()
                .ok_or_else(|| format!("{kw}: missing <{name}>"))?;
            // The server echoes these errors to remote clients, so
            // distinguish a number that is simply too large from a token
            // that is not a number at all.
            raw.parse().map_err(|e: std::num::ParseIntError| {
                if *e.kind() == std::num::IntErrorKind::PosOverflow {
                    format!(
                        "{kw}: <{name}> {raw:?} overflows the vertex id range \
                         (max {})",
                        u64::MAX
                    )
                } else {
                    format!("{kw}: <{name}> must be a vertex id (got {raw:?})")
                }
            })
        };
        let q = match kw {
            "degree" => Query::Degree(arg("v")?),
            "neighbors" => Query::Neighbors(arg("v")?),
            "has_edge" => Query::HasEdge(arg("u")?, arg("v")?),
            "tri_vertex" => Query::VertexTriangles(arg("v")?),
            "tri_edge" => Query::EdgeTriangles(arg("u")?, arg("v")?),
            other => {
                return Err(format!(
                    "unknown query {other:?} (expected degree, neighbors, \
                     has_edge, tri_vertex, or tri_edge)"
                ))
            }
        };
        if let Some(extra) = tok.next() {
            return Err(format!("{kw}: unexpected trailing token {extra:?}"));
        }
        Ok(q)
    }

    /// The vertex whose **primary row** answers this query — the one a
    /// cluster router routes on. For two-vertex queries (`has_edge`,
    /// `tri_edge`) that is the first vertex: the engine reads `u`'s row
    /// first and fetches `v`'s (possibly from a peer) only when needed,
    /// so the node owning `u` answers with at most one remote fetch.
    pub fn routing_vertex(self) -> u64 {
        match self {
            Query::Degree(v) | Query::Neighbors(v) | Query::VertexTriangles(v) => v,
            Query::HasEdge(u, _) | Query::EdgeTriangles(u, _) => u,
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Query::Degree(v) => write!(f, "degree {v}"),
            Query::Neighbors(v) => write!(f, "neighbors {v}"),
            Query::HasEdge(u, v) => write!(f, "has_edge {u} {v}"),
            Query::VertexTriangles(v) => write!(f, "tri_vertex {v}"),
            Query::EdgeTriangles(u, v) => write!(f, "tri_edge {u} {v}"),
        }
    }
}

/// Parse a whole query file: one query per line, blank lines and lines
/// starting with `#` ignored. Errors name the offending line number.
///
/// # Errors
///
/// The first failing line's [`Query::parse`] message, prefixed with
/// its 1-based line number.
pub fn parse_queries(text: &str) -> Result<Vec<Query>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(Query::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// The answer to one [`Query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// A scalar count (`degree`, `tri_vertex`, `tri_edge`).
    Count(u64),
    /// A membership test (`has_edge`).
    Bool(bool),
    /// An adjacency row (`neighbors`), copied out of the mapping.
    Row(Vec<u64>),
    /// `tri_edge` on a pair that is not an edge.
    NotAnEdge,
}

impl std::fmt::Display for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Answer::Count(c) => write!(f, "{c}"),
            Answer::Bool(b) => write!(f, "{b}"),
            Answer::Row(row) => {
                for (i, v) in row.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            Answer::NotAnEdge => write!(f, "not-an-edge"),
        }
    }
}

/// Answer one query, returning the wedge checks it performed. Shared by
/// [`run_batch`] and the HTTP server's per-request path.
pub(crate) fn answer(engine: &ServeEngine, q: Query) -> (Result<Answer, ServeError>, u64) {
    match q {
        Query::Degree(v) => (engine.degree(v).map(Answer::Count), 0),
        Query::Neighbors(v) => (engine.neighbors(v).map(|r| Answer::Row(r.into_owned())), 0),
        Query::HasEdge(u, v) => (engine.has_edge(u, v).map(Answer::Bool), 0),
        Query::VertexTriangles(v) => match engine.vertex_triangles_with_checks(v) {
            Ok((t, checks)) => (Ok(Answer::Count(t)), checks),
            Err(e) => (Err(e), 0),
        },
        Query::EdgeTriangles(u, v) => match engine.edge_triangles_with_checks(u, v) {
            Ok(Some((d, checks))) => (Ok(Answer::Count(d)), checks),
            Ok(None) => (Ok(Answer::NotAnEdge), 0),
            Err(e) => (Err(e), 0),
        },
    }
}

/// Latency/throughput report of one batch run.
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// Which [`AnswerSource`] the engine answered from — latency
    /// percentiles of runs with different sources are directly comparable
    /// rows of the same report (`BENCH_serve.json` stores one per source).
    pub source: AnswerSource,
    /// Queries answered (including per-query errors).
    pub queries: usize,
    /// Queries that returned an error (out-of-range ids, corruption).
    pub errors: usize,
    /// Artifact/oracle disagreements recorded on the engine during this
    /// batch's execution window (always 0 outside
    /// [`AnswerSource::CrossCheck`] mode). The counter lives on the
    /// engine, so if several batches run *concurrently on the same
    /// engine* their windows overlap and a disagreement is attributed to
    /// every batch in flight — the total across the engine is exact
    /// (`ServeEngine::mismatch_count`), and zero here always means this
    /// batch was clean.
    pub mismatches: u64,
    /// Worker threads used for the fan-out.
    pub threads: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Total sorted-intersection comparisons (the paper's §VI accounting).
    pub wedge_checks: u64,
    /// Fastest single query.
    pub min: Duration,
    /// Mean per-query latency.
    pub mean: Duration,
    /// Median per-query latency.
    pub p50: Duration,
    /// 99th-percentile per-query latency.
    pub p99: Duration,
    /// Slowest single query.
    pub max: Duration,
}

impl QueryStats {
    /// Build a report from raw per-query latency samples.
    ///
    /// This is the aggregation [`run_batch`] uses; it is public so other
    /// drivers measuring their own latencies (the HTTP server's rolling
    /// window, `bench_serve`'s loopback client) produce directly
    /// comparable rows. The mean is computed from the total nanoseconds
    /// as `u128` divided by the exact sample count — batches larger than
    /// `u32::MAX` queries must not silently truncate the divisor (the
    /// old `Duration::checked_div(count as u32)` path did).
    pub fn from_samples(
        source: AnswerSource,
        mut lat: Vec<Duration>,
        errors: usize,
        mismatches: u64,
        threads: usize,
        wall: Duration,
        wedge_checks: u64,
    ) -> QueryStats {
        let queries = lat.len();
        lat.sort_unstable();
        // Percentile picks guard the empty batch (index math would
        // underflow) and degrade to the single sample for 1-query batches.
        let pick = |q: f64| -> Duration {
            if lat.is_empty() {
                Duration::ZERO
            } else {
                lat[((queries - 1) as f64 * q).round() as usize]
            }
        };
        let total_nanos: u128 = lat.iter().map(Duration::as_nanos).sum();
        let mean = if queries == 0 {
            Duration::ZERO
        } else {
            // mean ≤ max sample, so the quotient always fits a u64
            Duration::from_nanos(u64::try_from(total_nanos / queries as u128).unwrap_or(u64::MAX))
        };
        QueryStats {
            source,
            queries,
            errors,
            mismatches,
            threads,
            wall,
            wedge_checks,
            min: lat.first().copied().unwrap_or(Duration::ZERO),
            mean,
            p50: pick(0.50),
            p99: pick(0.99),
            max: lat.last().copied().unwrap_or(Duration::ZERO),
        }
    }

    /// Batch throughput in queries per second of wall time.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// The report as a JSON object (the shape `BENCH_serve.json` stores).
    pub fn to_json(&self) -> Json {
        let us = |d: Duration| Json::num(d.as_secs_f64() * 1e6);
        Json::obj(vec![
            ("source", Json::str(&self.source.to_string())),
            ("queries", Json::num(self.queries)),
            ("errors", Json::num(self.errors)),
            ("mismatches", Json::num(self.mismatches)),
            ("threads", Json::num(self.threads)),
            ("wall_secs", Json::num(self.wall.as_secs_f64())),
            ("qps", Json::num(self.qps())),
            ("wedge_checks", Json::num(self.wedge_checks)),
            ("min_us", us(self.min)),
            ("mean_us", us(self.mean)),
            ("p50_us", us(self.p50)),
            ("p99_us", us(self.p99)),
            ("max_us", us(self.max)),
        ])
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        write!(
            f,
            "{} queries ({} errors, {} mismatches) from {} on {} thread(s) \
             in {:.3}s — {:.0} q/s, {} wedge checks; latency µs: min {:.1} \
             / mean {:.1} / p50 {:.1} / p99 {:.1} / max {:.1}",
            self.queries,
            self.errors,
            self.mismatches,
            self.source,
            self.threads,
            self.wall.as_secs_f64(),
            self.qps(),
            self.wedge_checks,
            us(self.min),
            us(self.mean),
            us(self.p50),
            us(self.p99),
            us(self.max),
        )
    }
}

/// Outcome of [`run_batch`]: per-query answers in input order, plus the
/// aggregate report.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One answer per input query, in input order.
    pub answers: Vec<Result<Answer, ServeError>>,
    /// The latency/throughput report.
    pub stats: QueryStats,
}

/// Run a batch of queries concurrently against the engine.
///
/// Queries fan out over the shim rayon's worker threads (shard routing
/// happens per query, so a batch touching many shards parallelizes across
/// them); answers come back in input order. A query that fails (e.g. an
/// out-of-range vertex) yields its own `Err` slot without aborting the
/// rest of the batch.
///
/// The engine's configured [`AnswerSource`] decides what each query
/// actually does; the stats report that source, and in cross-check mode
/// also how many artifact/oracle disagreements surfaced during the
/// batch's execution window (detail via [`ServeEngine::mismatches`];
/// see [`QueryStats::mismatches`] for the overlap semantics when
/// batches share an engine concurrently).
pub fn run_batch(engine: &ServeEngine, queries: &[Query]) -> BatchOutcome {
    let mismatches_before = engine.mismatch_count();
    let t0 = Instant::now();
    let results: Vec<(Result<Answer, ServeError>, Duration, u64)> = (0..queries.len())
        .into_par_iter()
        .map(|i| {
            let q0 = Instant::now();
            let (res, checks) = answer(engine, queries[i]);
            (res, q0.elapsed(), checks)
        })
        .collect();
    let wall = t0.elapsed();
    let mut answers = Vec::with_capacity(results.len());
    let mut latencies = Vec::with_capacity(results.len());
    let mut wedge_checks = 0u64;
    let mut errors = 0usize;
    for (res, lat, checks) in results {
        errors += usize::from(res.is_err());
        wedge_checks += checks;
        latencies.push(lat);
        answers.push(res);
    }
    let stats = QueryStats::from_samples(
        engine.source(),
        latencies,
        errors,
        engine.mismatch_count() - mismatches_before,
        rayon::current_num_threads(),
        wall,
        wedge_checks,
    );
    BatchOutcome { answers, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron::KronProduct;
    use kron_graph::Graph;
    use kron_stream::{stream_product, OutputFormat, StreamConfig};

    #[test]
    fn query_lines_roundtrip_through_display() {
        let text =
            "\n# a comment\ndegree 5\nneighbors 0\nhas_edge 1 2\n\ntri_vertex 9\ntri_edge 3 4\n";
        let qs = parse_queries(text).unwrap();
        assert_eq!(qs.len(), 5);
        let rendered: String = qs.iter().map(|q| format!("{q}\n")).collect();
        assert_eq!(parse_queries(&rendered).unwrap(), qs);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = parse_queries("degree 1\nfrobnicate 2\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_queries("has_edge 1\n").unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let err = parse_queries("degree 1 2\n").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        let err = parse_queries("degree x\n").unwrap_err();
        assert!(err.contains("vertex id"), "{err}");
    }

    #[test]
    fn batch_answers_match_point_queries_in_order() {
        let dir = std::env::temp_dir().join(format!("kron_serve_batch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = KronProduct::new(a.clone(), a);
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
        cfg.shards = 3;
        stream_product(&c, &cfg).unwrap();
        let engine = crate::ServeEngine::open_verified(&dir).unwrap();

        let mut queries = Vec::new();
        for v in 0..c.num_vertices() {
            queries.push(Query::Degree(v));
            queries.push(Query::VertexTriangles(v));
            queries.push(Query::Neighbors(v));
            queries.push(Query::HasEdge(v, (v + 1) % c.num_vertices()));
            queries.push(Query::EdgeTriangles(v, (v + 1) % c.num_vertices()));
        }
        queries.push(Query::Degree(c.num_vertices())); // out of range: its slot errs
        let out = run_batch(&engine, &queries);
        assert_eq!(out.answers.len(), queries.len());
        assert_eq!(out.stats.queries, queries.len());
        assert_eq!(out.stats.errors, 1);
        assert!(out.answers.last().unwrap().is_err());
        assert!(out.stats.wedge_checks > 0);
        assert!(out.stats.qps() > 0.0);
        assert!(out.stats.min <= out.stats.p50 && out.stats.p50 <= out.stats.max);

        for (q, ans) in queries.iter().zip(&out.answers) {
            match (q, ans) {
                (Query::Degree(v), Ok(Answer::Count(d))) => assert_eq!(*d, c.degree(*v)),
                (Query::VertexTriangles(v), Ok(Answer::Count(t))) => {
                    assert_eq!(*t, c.vertex_triangles(*v))
                }
                (Query::Neighbors(v), Ok(Answer::Row(row))) => {
                    assert_eq!(row, &c.neighbors(*v))
                }
                (Query::HasEdge(u, v), Ok(Answer::Bool(b))) => assert_eq!(*b, c.has_edge(*u, *v)),
                (Query::EdgeTriangles(u, v), Ok(Answer::Count(d))) => {
                    assert_eq!(Some(*d), c.edge_triangles(*u, *v))
                }
                (Query::EdgeTriangles(u, v), Ok(Answer::NotAnEdge)) => {
                    assert_eq!(c.edge_triangles(*u, *v), None)
                }
                (Query::Degree(v), Err(_)) => assert_eq!(*v, c.num_vertices()),
                other => panic!("unexpected (query, answer) pair: {other:?}"),
            }
        }

        // stats serialize, tagged with the engine's answer source
        let j = out.stats.to_json();
        assert_eq!(j.req("queries").unwrap().as_usize().unwrap(), queries.len());
        assert_eq!(j.req("source").unwrap().as_str(), Some("artifact"));
        assert_eq!(j.req("mismatches").unwrap().as_u64(), Some(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tiny_engine(name: &str) -> (std::path::PathBuf, crate::ServeEngine) {
        let dir =
            std::env::temp_dir().join(format!("kron_serve_batch_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let c = KronProduct::new(a.clone(), a);
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
        cfg.shards = 2;
        stream_product(&c, &cfg).unwrap();
        let engine = crate::ServeEngine::open_verified(&dir).unwrap();
        (dir, engine)
    }

    #[test]
    fn empty_batch_has_sane_stats() {
        let (dir, engine) = tiny_engine("empty");
        let out = run_batch(&engine, &[]);
        assert!(out.answers.is_empty());
        let s = &out.stats;
        assert_eq!((s.queries, s.errors, s.mismatches), (0, 0, 0));
        // no division-by-zero or index underflow anywhere in the report
        assert_eq!(s.min, Duration::ZERO);
        assert_eq!(s.mean, Duration::ZERO);
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(s.p99, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);
        assert!(s.qps().is_finite());
        let rendered = s.to_string(); // Display must not panic
        assert!(rendered.contains("0 queries"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_query_batch_percentiles_are_the_sample() {
        let (dir, engine) = tiny_engine("single");
        let out = run_batch(&engine, &[Query::Degree(0)]);
        assert_eq!(out.stats.queries, 1);
        assert_eq!(out.stats.errors, 0);
        assert_eq!(out.stats.min, out.stats.max);
        assert_eq!(out.stats.p50, out.stats.max);
        assert_eq!(out.stats.p99, out.stats.max);
        assert_eq!(out.stats.mean, out.stats.max);
        assert!(out.stats.qps() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_error_batch_counts_every_error_and_names_them() {
        let (dir, engine) = tiny_engine("allerr");
        let n = engine.num_vertices();
        let queries = [
            Query::Degree(n),
            Query::VertexTriangles(n + 1),
            Query::EdgeTriangles(n, 0),
            Query::HasEdge(0, u64::MAX),
        ];
        let out = run_batch(&engine, &queries);
        assert_eq!(out.stats.errors, queries.len());
        for ans in &out.answers {
            let msg = ans.as_ref().unwrap_err().to_string();
            assert!(msg.contains("outside all shard row ranges"), "{msg}");
        }
        assert!(out.stats.qps().is_finite());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_from_known_latency_vector_pin_mean_and_percentiles() {
        // sorted: 1 1 2 2 3 3 4 5 9 100 µs (n = 10, total 130 µs)
        let lat: Vec<Duration> = [5u64, 1, 2, 100, 4, 3, 2, 1, 9, 3]
            .iter()
            .map(|&us| Duration::from_micros(us))
            .collect();
        let s = QueryStats::from_samples(
            AnswerSource::Artifact,
            lat,
            0,
            0,
            1,
            Duration::from_millis(1),
            0,
        );
        assert_eq!(s.queries, 10);
        assert_eq!(s.min, Duration::from_micros(1));
        // mean = 130 µs / 10, exact in nanoseconds — no u32 divisor cast
        assert_eq!(s.mean, Duration::from_micros(13));
        // index picks: p50 → round(9·0.50) = 5 → 3 µs; p99 → round(9·0.99) = 9 → 100 µs
        assert_eq!(s.p50, Duration::from_micros(3));
        assert_eq!(s.p99, Duration::from_micros(100));
        assert_eq!(s.max, Duration::from_micros(100));

        // sub-microsecond means stay exact too (floor of 4 ns / 3)
        let tiny: Vec<Duration> = [1u64, 1, 2]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let s = QueryStats::from_samples(
            AnswerSource::Artifact,
            tiny,
            0,
            0,
            1,
            Duration::from_micros(1),
            0,
        );
        assert_eq!(s.mean, Duration::from_nanos(1));
    }

    #[test]
    fn parse_distinguishes_overflow_from_malformed_vertex_ids() {
        // 2^64 exactly: one past u64::MAX — an overflow, not a typo
        let err = parse_queries("degree 18446744073709551616\n").unwrap_err();
        assert!(err.contains("overflows"), "{err}");
        assert!(err.contains(&u64::MAX.to_string()), "{err}");
        // wildly out of range is still overflow
        let err = Query::parse("tri_edge 1 99999999999999999999999999").unwrap_err();
        assert!(err.contains("overflows"), "{err}");
        // non-numeric tokens stay "must be a vertex id", naming the token
        for bad in ["degree x", "degree -3", "tri_vertex 1e3", "has_edge 0 0x10"] {
            let err = Query::parse(bad).unwrap_err();
            assert!(err.contains("must be a vertex id"), "{bad:?} → {err}");
            assert!(!err.contains("overflows"), "{bad:?} → {err}");
        }
        // u64::MAX itself parses fine (the engine rejects it as out of
        // range later, which is a different, per-run answer)
        assert_eq!(
            Query::parse(&format!("degree {}", u64::MAX)).unwrap(),
            Query::Degree(u64::MAX)
        );
    }

    #[test]
    fn malformed_query_files_are_rejected_before_any_batch_runs() {
        // every malformed shape yields a named parse error, never a batch
        for (text, needle) in [
            ("degree\n", "missing"),
            ("tri_edge 1\n", "missing"),
            ("degree 1 2\n", "trailing"),
            ("degree -3\n", "vertex id"),
            ("tri_vertex 1e3\n", "vertex id"),
            ("frobnicate 1\n", "unknown query"),
        ] {
            let err = parse_queries(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} → {err}");
        }
        // an all-comment file is an *empty* batch, not an error
        assert!(parse_queries("# only\n\n# comments\n").unwrap().is_empty());
    }
}
