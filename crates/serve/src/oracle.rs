//! The closed-form answer source: the paper's formulas served from the
//! run directory's factor copies, no shard I/O per query.
//!
//! Every `kron stream` run directory carries copies of both factor edge
//! lists (`factor_a.tsv` / `factor_b.tsv`, named by `run.json`) precisely
//! so the run stays self-describing. [`FactorOracle`] loads those copies
//! back into an implicit [`KronProduct`] and answers the same point
//! queries the artifact path serves — degree and per-vertex triangles in
//! `O(1)` from the precomputed factor statistic vectors (Thm. 1 / Cor. 1 /
//! §III-B), `has_edge` and per-edge triangles by two binary searches in
//! factor rows (Thm. 2 / Cor. 2 / §III-C) — without touching a single
//! mapped page.
//!
//! Loading cross-validates the factor copies against `run.json` (vertex
//! counts and adjacency nnz), so a run directory whose factors were
//! swapped or truncated after generation is rejected instead of silently
//! answering for a different product.

use crate::engine::ServeError;
use kron::KronProduct;
use kron_graph::read_edge_list_path;
use kron_stream::RunSummary;
use std::path::Path;

/// Closed-form query oracle over the run directory's factor copies.
///
/// Construction is `O(nnz(A) + nnz(B))` (edge-list parse plus the factor
/// statistic precomputation); afterwards every query is answered from the
/// factors alone. Out-of-range handling matches the artifact path exactly:
/// the same [`ServeError::VertexOutOfRange`] on the same inputs.
pub struct FactorOracle {
    product: KronProduct,
}

impl std::fmt::Debug for FactorOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FactorOracle")
            .field("product", &self.product)
            .finish()
    }
}

impl FactorOracle {
    /// Load the factor copies named by `run` from `dir` and build the
    /// implicit product, rejecting factors that disagree with `run.json`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Oracle`] naming the factor copy that is missing,
    /// unreadable, or inconsistent with `run.json` (vertex counts,
    /// adjacency nnz, closed-form triangle sum).
    pub fn load(dir: &Path, run: &RunSummary) -> Result<FactorOracle, ServeError> {
        let read = |name: &str| -> Result<kron_graph::Graph, ServeError> {
            read_edge_list_path(dir.join(name))
                .map_err(|e| ServeError::Oracle(format!("factor copy {name}: {e}")))
        };
        let a = read(&run.factor_a)?;
        let b = read(&run.factor_b)?;
        let check = |name: &str, what: &str, got: u64, want: u64| -> Result<(), ServeError> {
            if got == want {
                Ok(())
            } else {
                Err(ServeError::Oracle(format!(
                    "factor copy {name}: {what} is {got}, run.json says {want} \
                     (stale or swapped factor file)"
                )))
            }
        };
        check(
            &run.factor_a,
            "vertex count",
            a.num_vertices() as u64,
            run.n_a,
        )?;
        check(
            &run.factor_b,
            "vertex count",
            b.num_vertices() as u64,
            run.n_b,
        )?;
        check(&run.factor_a, "adjacency nnz", a.nnz(), run.nnz_a)?;
        check(&run.factor_b, "adjacency nnz", b.nnz(), run.nnz_b)?;
        let product = KronProduct::new(a, b);
        // The strongest cheap cross-check: the closed-form triangle total
        // of the loaded factors must reproduce run.json's recorded sum.
        let want = run.total_triangle_sum;
        let got = product.total_triangle_participation();
        if got != want {
            return Err(ServeError::Oracle(format!(
                "factor copies: closed-form triangle sum is {got}, run.json \
                 recorded {want} (factors do not generate this run)"
            )));
        }
        Ok(FactorOracle { product })
    }

    /// The implicit product rebuilt from the factor copies.
    pub fn product(&self) -> &KronProduct {
        &self.product
    }

    /// Product vertex count `n_C`.
    pub fn num_vertices(&self) -> u64 {
        self.product.num_vertices()
    }

    fn check_vertex(&self, v: u64) -> Result<(), ServeError> {
        if v < self.product.num_vertices() {
            Ok(())
        } else {
            Err(ServeError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.product.num_vertices(),
            })
        }
    }

    /// Degree of `v` in closed form (loops excluded, §III-A).
    ///
    /// # Errors
    ///
    /// [`ServeError::VertexOutOfRange`] for `v ≥ n_C` — identical to the
    /// artifact path on the same inputs.
    pub fn degree(&self, v: u64) -> Result<u64, ServeError> {
        self.check_vertex(v)?;
        Ok(self.product.degree(v))
    }

    /// The sorted adjacency row of `v`, materialized from the factor rows
    /// (self loop included, identical to the on-disk CSR row).
    ///
    /// # Errors
    ///
    /// [`ServeError::VertexOutOfRange`] for `v ≥ n_C` — identical to the
    /// artifact path on the same inputs.
    pub fn neighbors(&self, v: u64) -> Result<Vec<u64>, ServeError> {
        self.check_vertex(v)?;
        Ok(self.product.neighbors(v))
    }

    /// Whether `{u, v}` is an adjacency entry: `C_uv = A_ij·B_kl`, two
    /// binary searches in factor rows.
    ///
    /// # Errors
    ///
    /// [`ServeError::VertexOutOfRange`] for either id ≥ `n_C` — identical to the
    /// artifact path on the same inputs.
    pub fn has_edge(&self, u: u64, v: u64) -> Result<bool, ServeError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        Ok(self.product.has_edge(u, v))
    }

    /// Triangle participation `t_C(v)` in `O(1)` from factor terms
    /// (Thm. 1 / Cor. 1 / the general §III-B formula).
    ///
    /// # Errors
    ///
    /// [`ServeError::VertexOutOfRange`] for `v ≥ n_C` — identical to the
    /// artifact path on the same inputs.
    pub fn vertex_triangles(&self, v: u64) -> Result<u64, ServeError> {
        self.check_vertex(v)?;
        Ok(self.product.vertex_triangles(v))
    }

    /// Triangle participation `Δ_C[{u, v}]` (Thm. 2 / Cor. 2 / §III-C), or
    /// `None` if `{u, v}` is not an edge; self loops report `Some(0)`.
    ///
    /// # Errors
    ///
    /// [`ServeError::VertexOutOfRange`] for either id ≥ `n_C` — identical to the
    /// artifact path on the same inputs.
    pub fn edge_triangles(&self, u: u64, v: u64) -> Result<Option<u64>, ServeError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        Ok(self.product.edge_triangles(u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::Graph;
    use kron_stream::{stream_product, OutputFormat, StreamConfig};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kron_serve_oracle_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn product() -> KronProduct {
        let a = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 4), (5, 5)]);
        let b = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 3), (0, 0)]);
        KronProduct::new(a, b)
    }

    fn streamed(dir: &Path, c: &KronProduct) -> RunSummary {
        let mut cfg = StreamConfig::new(dir, OutputFormat::Csr);
        cfg.shards = 2;
        stream_product(c, &cfg).unwrap()
    }

    #[test]
    fn oracle_reproduces_every_closed_form() {
        let dir = tmpdir("closed_form");
        let c = product();
        let run = streamed(&dir, &c);
        let o = FactorOracle::load(&dir, &run).unwrap();
        assert_eq!(o.num_vertices(), c.num_vertices());
        for v in 0..c.num_vertices() {
            assert_eq!(o.degree(v).unwrap(), c.degree(v));
            assert_eq!(o.neighbors(v).unwrap(), c.neighbors(v));
            assert_eq!(o.vertex_triangles(v).unwrap(), c.vertex_triangles(v));
            for q in 0..c.num_vertices() {
                assert_eq!(o.has_edge(v, q).unwrap(), c.has_edge(v, q));
                assert_eq!(o.edge_triangles(v, q).unwrap(), c.edge_triangles(v, q));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_matches_artifact_semantics() {
        let dir = tmpdir("oob");
        let c = product();
        let run = streamed(&dir, &c);
        let o = FactorOracle::load(&dir, &run).unwrap();
        let n = o.num_vertices();
        for bad in [n, n + 3, u64::MAX] {
            assert!(matches!(
                o.degree(bad),
                Err(ServeError::VertexOutOfRange { vertex, .. }) if vertex == bad
            ));
            assert!(o.neighbors(bad).is_err());
            assert!(o.vertex_triangles(bad).is_err());
            assert!(o.has_edge(0, bad).is_err());
            assert!(o.has_edge(bad, 0).is_err());
            assert!(o.edge_triangles(0, bad).is_err());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swapped_factor_copy_is_rejected() {
        let dir = tmpdir("swapped");
        let c = product();
        let run = streamed(&dir, &c);
        // overwrite factor_a with a different graph of the same vertex count
        let other = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        kron_graph::write_edge_list_path(&other, dir.join(&run.factor_a)).unwrap();
        let err = FactorOracle::load(&dir, &run).unwrap_err();
        assert!(matches!(err, ServeError::Oracle(_)), "{err}");
        assert!(err.to_string().contains("factor"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_factor_copy_names_the_file() {
        let dir = tmpdir("missing");
        let c = product();
        let run = streamed(&dir, &c);
        std::fs::remove_file(dir.join(&run.factor_b)).unwrap();
        let err = FactorOracle::load(&dir, &run).unwrap_err();
        assert!(err.to_string().contains("factor_b.tsv"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
