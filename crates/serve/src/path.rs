//! Traversal serving: shortest paths and k-hop neighborhoods over the
//! engine's row-fetch path.
//!
//! [`PathFinder`] answers `GET /path?from=&to=` with a **bidirectional
//! BFS**: two frontiers grow toward each other through the engine's
//! row fetches — resident rows zero-copy off the shard mappings,
//! non-resident rows over `GET /row?enc=vd` and the byte-budgeted
//! hot-row cache — so a cluster node can traverse the whole product
//! while holding only its claimed shards. The frontier expansion
//! itself is [`kron_analyze::frontier_step`], the same kernel the
//! analytics BFS runs chunk-parallel over resident shards.
//!
//! Every step is deterministic: frontiers are kept sorted, the smaller
//! side expands first (ties toward the `from` side), neighbors are
//! visited in row order with first-discovery parent assignment, and
//! competing meeting points resolve to the smallest `(total hops,
//! vertex id)`. A single whole-run node and any cluster tiling
//! therefore produce **byte-identical** answers.
//!
//! Traversal answers are *witnesses*, so correctness tooling rides
//! along: under a cross-check source, [`PathCertifier`] re-verifies
//! every returned path edge-by-edge against the artifact (`has_edge`)
//! and the closed-form [`crate::FactorOracle`], counting disagreements
//! into the engine's mismatch machinery — the same counters that drive
//! `/stats` and the CLI's nonzero cross-check exit.

use crate::engine::{AnswerSource, ServeEngine, ServeError};
use crate::http::Request;
use kron_analyze::frontier_step;
use kron_stream::json::Json;
use std::collections::{HashMap, HashSet};

/// Stop a k-hop expansion once this many vertices are reached: the
/// level whose completion crosses the cap is the last one expanded,
/// and the response carries per-level counts only (`"truncated":true`,
/// no member lists). Bounds both the work and the response size.
pub const MAX_KHOP_VERTICES: u64 = 65_536;

/// A `/path` answer: the endpoints as asked, and the witness walk when
/// one exists.
pub struct PathAnswer {
    /// Source vertex of the query.
    pub from: u64,
    /// Target vertex of the query.
    pub to: u64,
    /// The `max_depth` bound echoed back, when the query carried one.
    pub max_depth: Option<u64>,
    /// A minimal-length walk `from → … → to`, or `None` when `to` is
    /// unreachable (within `max_depth`, if bounded).
    pub path: Option<Vec<u64>>,
}

impl PathAnswer {
    /// Hop count of the witness walk (`path.len() - 1`), if reachable.
    pub fn hops(&self) -> Option<u64> {
        self.path.as_ref().map(|p| p.len() as u64 - 1)
    }

    /// The wire shape served by `GET /path` (normative in
    /// ARCHITECTURE.md "Traversal serving").
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("from", Json::num(self.from)),
            ("to", Json::num(self.to)),
        ];
        if let Some(k) = self.max_depth {
            pairs.push(("max_depth", Json::num(k)));
        }
        match &self.path {
            Some(p) => {
                pairs.push(("hops", Json::num(p.len() as u64 - 1)));
                pairs.push(("path", Json::Arr(p.iter().map(Json::num).collect())));
            }
            None => pairs.push(("unreachable", Json::Bool(true))),
        }
        Json::obj(pairs)
    }
}

/// A `/khop` answer: the BFS neighborhood of `v` out to `k` hops, with
/// exact per-level counts and (when under [`MAX_KHOP_VERTICES`]) the
/// sorted member list of every level.
pub struct KhopAnswer {
    /// Center vertex of the neighborhood.
    pub v: u64,
    /// The requested hop radius (the expansion may stop earlier when
    /// the neighborhood is exhausted or the size cap is crossed).
    pub k: u64,
    /// `levels[d]` = vertices first reached at depth `d`
    /// (`levels[0] = 1`, the center itself).
    pub levels: Vec<u64>,
    /// Sorted members of each level; `None` when the expansion crossed
    /// [`MAX_KHOP_VERTICES`] and the lists were dropped.
    pub vertices: Option<Vec<Vec<u64>>>,
}

impl KhopAnswer {
    /// Total vertices reached (the sum of the per-level counts).
    pub fn reached(&self) -> u64 {
        self.levels.iter().sum()
    }

    /// The wire shape served by `GET /khop` (normative in
    /// ARCHITECTURE.md "Traversal serving").
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("v", Json::num(self.v)),
            ("k", Json::num(self.k)),
            ("reached", Json::num(self.reached())),
            (
                "levels",
                Json::Arr(self.levels.iter().map(Json::num).collect()),
            ),
        ];
        match &self.vertices {
            Some(levels) => pairs.push((
                "vertices",
                Json::Arr(
                    levels
                        .iter()
                        .map(|l| Json::Arr(l.iter().map(Json::num).collect()))
                        .collect(),
                ),
            )),
            None => pairs.push(("truncated", Json::Bool(true))),
        }
        Json::obj(pairs)
    }
}

/// Bidirectional-BFS traversal over a [`ServeEngine`]'s rows.
pub struct PathFinder<'e> {
    engine: &'e ServeEngine,
}

impl<'e> PathFinder<'e> {
    /// A finder borrowing the engine (no state beyond the borrow; cheap
    /// to build per request).
    pub fn new(engine: &'e ServeEngine) -> PathFinder<'e> {
        PathFinder { engine }
    }

    fn check_vertex(&self, v: u64) -> Result<(), ServeError> {
        let n = self.engine.num_vertices();
        if v >= n {
            return Err(ServeError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        Ok(())
    }

    /// A minimal-hop path `from → to`, bounded by `max_depth` hops when
    /// given. Unreachable (or only reachable beyond the bound) is the
    /// in-band `path: None`, not an error; out-of-range endpoints and
    /// failed remote row fetches are errors. Under a cross-check
    /// source, every returned path is certified edge-by-edge before it
    /// is returned (see [`PathCertifier`]).
    pub fn shortest_path(
        &self,
        from: u64,
        to: u64,
        max_depth: Option<u64>,
    ) -> Result<PathAnswer, ServeError> {
        self.engine.count_traversal_query();
        self.check_vertex(from)?;
        self.check_vertex(to)?;
        let path = if from == to {
            Some(vec![from])
        } else if max_depth == Some(0) {
            None
        } else {
            self.bidirectional(from, to, max_depth)?
        };
        if let Some(p) = &path {
            if matches!(
                self.engine.source(),
                AnswerSource::CrossCheck | AnswerSource::CrossCheckSampled(_)
            ) {
                PathCertifier::new(self.engine).certify(from, to, p);
            }
        }
        Ok(PathAnswer {
            from,
            to,
            max_depth,
            path,
        })
    }

    /// The k-hop BFS neighborhood of `v`: exact per-level counts, with
    /// member lists unless the expansion crosses [`MAX_KHOP_VERTICES`].
    pub fn khop(&self, v: u64, k: u64) -> Result<KhopAnswer, ServeError> {
        self.engine.count_traversal_query();
        self.check_vertex(v)?;
        let n = self.engine.num_vertices();
        let mut seen: HashSet<u64> = HashSet::from([v]);
        let mut frontier = vec![v];
        let mut level_sets: Vec<Vec<u64>> = vec![vec![v]];
        let mut reached = 1u64;
        let mut truncated = false;
        for _ in 0..k {
            let mut next: Vec<u64> = Vec::new();
            frontier_step(
                &frontier,
                n,
                &mut |w| self.engine.traversal_row(w),
                &|w, u| bad_column(w, u),
                &mut |_, u| {
                    if seen.insert(u) {
                        next.push(u);
                    }
                },
            )?;
            if next.is_empty() {
                break;
            }
            next.sort_unstable();
            reached += next.len() as u64;
            frontier = next.clone();
            level_sets.push(next);
            if reached > MAX_KHOP_VERTICES {
                truncated = true;
                break;
            }
        }
        Ok(KhopAnswer {
            v,
            k,
            levels: level_sets.iter().map(|l| l.len() as u64).collect(),
            vertices: (!truncated).then_some(level_sets),
        })
    }

    /// The two-frontier search. Correctness of the stopping rule: any
    /// path of length `L ≤ dA+dB` (completed depths) has a vertex
    /// visited by both sides, which recorded a meeting candidate
    /// `μ ≤ L` the moment it became doubly-visited — so once the best
    /// candidate satisfies `μ ≤ dA+dB`, it is the true distance. An
    /// emptied frontier means that side's component is exhausted, and
    /// `dA+dB ≥ max_depth` means no in-bound path can still beat the
    /// candidates already seen.
    fn bidirectional(
        &self,
        from: u64,
        to: u64,
        max_depth: Option<u64>,
    ) -> Result<Option<Vec<u64>>, ServeError> {
        // Per side: vertex → (depth, parent); the sources parent themselves.
        let mut seen_a: HashMap<u64, (u64, u64)> = HashMap::from([(from, (0, from))]);
        let mut seen_b: HashMap<u64, (u64, u64)> = HashMap::from([(to, (0, to))]);
        let mut frontier_a = vec![from];
        let mut frontier_b = vec![to];
        let (mut da, mut db) = (0u64, 0u64);
        // Best meeting so far: (total hops, meeting vertex), minimized.
        let mut best: Option<(u64, u64)> = None;
        loop {
            if best.is_some_and(|(mu, _)| mu <= da + db) {
                break;
            }
            if frontier_a.is_empty() || frontier_b.is_empty() {
                break;
            }
            if max_depth.is_some_and(|k| da + db >= k) {
                break;
            }
            // Expand the smaller frontier — the classic bidirectional
            // work bound — and, because frontier sizes are themselves
            // deterministic, the same side on every node of a cluster.
            if frontier_a.len() <= frontier_b.len() {
                frontier_a = self.expand(&frontier_a, da, &mut seen_a, &seen_b, &mut best)?;
                da += 1;
            } else {
                frontier_b = self.expand(&frontier_b, db, &mut seen_b, &seen_a, &mut best)?;
                db += 1;
            }
        }
        let Some((mu, meet)) = best else {
            return Ok(None);
        };
        if max_depth.is_some_and(|k| mu > k) {
            return Ok(None);
        }
        // Stitch the witness: parent-walk from the meeting vertex out
        // to both endpoints.
        let mut path = Vec::with_capacity(mu as usize + 1);
        let mut v = meet;
        loop {
            path.push(v);
            let (d, parent) = seen_a[&v];
            if d == 0 {
                break;
            }
            v = parent;
        }
        path.reverse();
        let mut v = meet;
        loop {
            let (d, parent) = seen_b[&v];
            if d == 0 {
                break;
            }
            v = parent;
            path.push(v);
        }
        debug_assert_eq!(path.len() as u64, mu + 1);
        Ok(Some(path))
    }

    /// One level of one side: discover unseen neighbors of the sorted
    /// frontier (first listing wins the parent slot), record meetings
    /// with the other side, and return the next frontier sorted.
    fn expand(
        &self,
        frontier: &[u64],
        depth: u64,
        seen: &mut HashMap<u64, (u64, u64)>,
        other: &HashMap<u64, (u64, u64)>,
        best: &mut Option<(u64, u64)>,
    ) -> Result<Vec<u64>, ServeError> {
        let mut next: Vec<u64> = Vec::new();
        frontier_step(
            frontier,
            self.engine.num_vertices(),
            &mut |v| self.engine.traversal_row(v),
            &|v, u| bad_column(v, u),
            &mut |v, u| {
                if seen.contains_key(&u) {
                    return;
                }
                seen.insert(u, (depth + 1, v));
                next.push(u);
                if let Some(&(d_other, _)) = other.get(&u) {
                    let mu = depth + 1 + d_other;
                    if best.is_none_or(|(bm, bv)| (mu, u) < (bm, bv)) {
                        *best = Some((mu, u));
                    }
                }
            },
        )?;
        next.sort_unstable();
        Ok(next)
    }
}

fn bad_column(v: u64, u: u64) -> ServeError {
    ServeError::Corrupt(format!("row {v} lists neighbor {u} outside every shard"))
}

/// Re-verifies returned paths edge-by-edge: the traversal layer's
/// answer is a *witness*, so under `--source cross-check` each claimed
/// edge is re-read through the artifact (`has_edge`) and recomputed
/// against the closed-form [`crate::FactorOracle`] when the engine
/// carries one. Disagreements land in the engine's mismatch log and
/// counter — the machinery behind `/stats` `mismatch_count` and the
/// CLI's nonzero cross-check exit.
pub struct PathCertifier<'e> {
    engine: &'e ServeEngine,
}

impl<'e> PathCertifier<'e> {
    /// A certifier borrowing the engine.
    pub fn new(engine: &'e ServeEngine) -> PathCertifier<'e> {
        PathCertifier { engine }
    }

    /// Certify one path; returns how many of its edges failed. Counts
    /// one sampled check on the engine, and one mismatch per bad edge.
    /// A remote-fetch failure while re-reading observed nothing about
    /// the artifact bytes, so (like the scalar cross-check path) it
    /// records no verdict.
    pub fn certify(&self, from: u64, to: u64, path: &[u64]) -> u64 {
        self.engine.count_certified();
        let mut bad = 0u64;
        for pair in path.windows(2) {
            let (u, v) = (pair[0], pair[1]);
            let art = self.engine.has_edge_artifact(u, v);
            let ora = self.engine.oracle().map(|o| o.has_edge(u, v));
            let art_ok = matches!(art, Ok(true));
            let art_no_verdict = matches!(art, Err(ServeError::Remote(_)));
            let ora_ok = ora.as_ref().is_none_or(|r| matches!(r, Ok(true)));
            if (art_ok || art_no_verdict) && ora_ok {
                continue;
            }
            bad += 1;
            let show = |r: &Result<bool, ServeError>| match r {
                Ok(b) => b.to_string(),
                Err(e) => format!("error: {e}"),
            };
            self.engine.note_mismatch(
                format!("path {from} {to}: edge {u} {v}"),
                show(&art),
                match &ora {
                    Some(r) => show(r),
                    None => "unavailable".to_string(),
                },
            );
        }
        bad
    }
}

/// Parse one `u64` query parameter with the `Query::parse` error
/// conventions pinned in the batch grammar: a missing parameter names
/// it, overflow is distinguished from malformed, and the offending
/// token is echoed back.
pub(crate) fn parse_u64_param(
    kw: &str,
    name: &str,
    noun: &str,
    raw: Option<&str>,
) -> Result<u64, String> {
    let raw = raw.ok_or_else(|| format!("{kw}: missing <{name}>"))?;
    raw.parse().map_err(|e: std::num::ParseIntError| {
        if *e.kind() == std::num::IntErrorKind::PosOverflow {
            format!(
                "{kw}: <{name}> {raw:?} overflows the {noun} range (max {})",
                u64::MAX
            )
        } else {
            format!("{kw}: <{name}> must be a {noun} (got {raw:?})")
        }
    })
}

/// Parse `GET /path` parameters: `(from, to, max_depth)`. Shared by
/// the node server and the router so both echo identical 400s.
pub(crate) fn parse_path_params(req: &Request) -> Result<(u64, u64, Option<u64>), String> {
    let from = parse_u64_param("path", "from", "vertex id", req.query_param("from"))?;
    let to = parse_u64_param("path", "to", "vertex id", req.query_param("to"))?;
    let max_depth = match req.query_param("max_depth") {
        Some(raw) => Some(parse_u64_param("path", "max_depth", "hop count", Some(raw))?),
        None => None,
    };
    Ok((from, to, max_depth))
}

/// Parse `GET /khop` parameters: `(v, k)`. Shared by the node server
/// and the router so both echo identical 400s.
pub(crate) fn parse_khop_params(req: &Request) -> Result<(u64, u64), String> {
    let v = parse_u64_param("khop", "v", "vertex id", req.query_param("v"))?;
    let k = parse_u64_param("khop", "k", "hop count", req.query_param("k"))?;
    Ok((v, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OpenOptions;
    use kron::KronProduct;
    use kron_graph::Graph;
    use kron_stream::{stream_product, OutputFormat, StreamConfig};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kron_path_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Triangle squared: 9 vertices, (a,b)~(a',b') iff a≠a' and b≠b'.
    fn triangle_squared(dir: &std::path::Path, shards: usize) -> KronProduct {
        let a = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let c = KronProduct::new(a.clone(), a);
        let mut cfg = StreamConfig::new(dir, OutputFormat::Csr);
        cfg.shards = shards;
        stream_product(&c, &cfg).unwrap();
        c
    }

    #[test]
    fn paths_on_triangle_squared_are_minimal_and_deterministic() {
        let dir = tmpdir("tri2");
        let c = triangle_squared(&dir, 3);
        let engine = ServeEngine::open(&dir).unwrap();
        let finder = PathFinder::new(&engine);

        // Direct edge: one hop.
        let a = finder.shortest_path(0, 8, None).unwrap();
        assert_eq!(a.path, Some(vec![0, 8]));
        assert_eq!(a.hops(), Some(1));

        // (0,0) to (0,1): same left coordinate, so two hops via the
        // smallest doubly-visited vertex.
        let a = finder.shortest_path(0, 1, None).unwrap();
        assert_eq!(a.path, Some(vec![0, 5, 1]));

        // Self path.
        let a = finder.shortest_path(4, 4, None).unwrap();
        assert_eq!(a.path, Some(vec![4]));
        assert_eq!(a.hops(), Some(0));

        // max_depth below the distance → in-band unreachable; at the
        // distance → found.
        assert!(finder.shortest_path(0, 1, Some(1)).unwrap().path.is_none());
        assert!(finder.shortest_path(0, 1, Some(0)).unwrap().path.is_none());
        assert_eq!(
            finder.shortest_path(0, 1, Some(2)).unwrap().path,
            Some(vec![0, 5, 1])
        );

        // Every pair: distance matches a reference BFS, and the walk is
        // valid edge-by-edge.
        for from in 0..c.num_vertices() {
            let dist = reference_bfs(&c, from);
            for to in 0..c.num_vertices() {
                let a = finder.shortest_path(from, to, None).unwrap();
                match dist[to as usize] {
                    Some(d) => {
                        let p = a.path.expect("reachable");
                        assert_eq!(p.len() as u64 - 1, d, "{from}->{to}");
                        for w in p.windows(2) {
                            assert!(engine.has_edge(w[0], w[1]).unwrap(), "{from}->{to}");
                        }
                    }
                    None => assert!(a.path.is_none()),
                }
            }
        }
    }

    #[test]
    fn khop_levels_match_reference_and_out_of_range_errors() {
        let dir = tmpdir("khop");
        let c = triangle_squared(&dir, 2);
        let engine = ServeEngine::open(&dir).unwrap();
        let finder = PathFinder::new(&engine);

        let a = finder.khop(4, 1).unwrap();
        assert_eq!(a.levels, vec![1, 4]);
        assert_eq!(a.reached(), 5);
        assert_eq!(a.vertices, Some(vec![vec![4], vec![0, 2, 6, 8]]));

        let a = finder.khop(4, 9).unwrap();
        assert_eq!(a.reached(), c.num_vertices());

        // k = 0 is just the center.
        let a = finder.khop(7, 0).unwrap();
        assert_eq!(a.levels, vec![1]);
        assert_eq!(a.vertices, Some(vec![vec![7]]));

        assert!(matches!(
            finder.khop(9, 1),
            Err(ServeError::VertexOutOfRange { vertex: 9, .. })
        ));
        assert!(matches!(
            finder.shortest_path(0, 9, None),
            Err(ServeError::VertexOutOfRange { vertex: 9, .. })
        ));
    }

    #[test]
    fn certifier_counts_tampered_edges_into_the_mismatch_machinery() {
        let dir = tmpdir("certify");
        let c = triangle_squared(&dir, 1);
        let engine = ServeEngine::open_with(
            &dir,
            &OpenOptions {
                verify_checksums: false,
                source: AnswerSource::CrossCheck,
                ..OpenOptions::default()
            },
        )
        .unwrap();
        let finder = PathFinder::new(&engine);
        let a = finder.shortest_path(0, 1, None).unwrap();
        assert!(a.path.is_some());
        assert_eq!(engine.mismatch_count(), 0, "clean artifact certifies clean");
        assert!(engine.sampled_checks() >= 1);

        // A fabricated walk through same-left-coordinate pairs must be
        // flagged: (0,0)-(0,1) and (0,1)-(0,2) are both non-edges.
        let bad = PathCertifier::new(&engine).certify(0, 1, &[0, 1, 2]);
        assert_eq!(bad, 2, "0-1 and 1-2 are both non-edges");
        assert!(engine.mismatch_count() >= 2);
        assert!(engine
            .mismatches()
            .iter()
            .any(|m| m.query.starts_with("path 0 1: edge")));
        drop(c);
    }

    fn reference_bfs(c: &KronProduct, from: u64) -> Vec<Option<u64>> {
        let n = c.num_vertices() as usize;
        let mut dist = vec![None; n];
        dist[from as usize] = Some(0);
        let mut frontier = vec![from];
        let mut d = 0u64;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for u in c.neighbors(v) {
                    if dist[u as usize].is_none() {
                        dist[u as usize] = Some(d);
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }
        dist
    }
}
