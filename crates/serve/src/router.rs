//! The stateless forwarding router: one address in front of a cluster of
//! shard-subset nodes, speaking the **unchanged single-node wire
//! protocol** to clients.
//!
//! `kron route --peers ADDR,ADDR,… --listen ADDR` owns no shards, opens
//! no run directory, and keeps no query state — it learns each peer's
//! claimed vertex range once at startup (`GET /shards`), validates that
//! the claims tile the whole product disjointly, and then:
//!
//! * forwards `GET /query` to the node owning the query's routing vertex
//!   ([`crate::Query::routing_vertex`]) and relays the answer verbatim;
//! * splits `POST /batch` bodies into per-node sub-batches, forwards them,
//!   and reassembles the answer lines **in input order** — byte-identical
//!   to what one node serving the whole run directory would produce;
//! * merges `GET /stats` across peers (per-peer documents plus summed
//!   totals; see `ARCHITECTURE.md` § "Cluster serving" for the normative
//!   merge rules);
//! * fans `GET /healthz` out to every peer (`ok` only when all are).
//!
//! A peer failure surfaces as `502 Bad Gateway` naming the peer — the
//! router never invents an answer. Parse errors (`400`) are produced by
//! the router itself with the same messages a node would emit, so clients
//! cannot tell a router from a node on the error path either.
//!
//! ## Example
//!
//! ```no_run
//! use kron_serve::{Router, Server, ServerOptions};
//! use std::sync::atomic::AtomicBool;
//! use std::time::Duration;
//!
//! // Two nodes already serve shard subsets at these addresses.
//! let router = Router::discover(
//!     &["10.0.0.1:8080".into(), "10.0.0.2:8080".into()],
//!     Duration::from_secs(5),
//! )
//! .unwrap();
//! let front = Server::bind("0.0.0.0:8080").unwrap();
//! let stop = AtomicBool::new(false);
//! let report = router
//!     .run(&front, &ServerOptions::default(), &stop)
//!     .unwrap();
//! println!("{report}");
//! ```

use crate::batch::{self, Query};
use crate::event_loop::serve_connections;
use crate::http::{self, encode_query_component, Client};
use crate::server::{LoopCounters, Server, ServerOptions, MAX_BATCH_RESPONSE};
use kron_stream::json::Json;
use std::io;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One discovered peer: its address, its claim, and a pool of idle
/// keep-alive connections.
struct RouterPeer {
    addr: String,
    shards: Range<usize>,
    vertices: Range<u64>,
    pool: Mutex<Vec<Client>>,
}

/// Totals of one router run, returned by [`Router::run`] after shutdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterReport {
    /// HTTP requests handled (all endpoints).
    pub requests: u64,
    /// Requests rejected as malformed (bad framing, bad query syntax).
    pub bad_requests: u64,
    /// Query lines forwarded to peers (each `/query`, plus each line of
    /// every `/batch`).
    pub queries: u64,
    /// Forwards that failed (unreachable peer, non-200 upstream answer
    /// where one was required, short sub-batch response).
    pub forward_errors: u64,
}

impl std::fmt::Display for RouterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} malformed), {} queries forwarded, {} forward errors",
            self.requests, self.bad_requests, self.queries, self.forward_errors
        )
    }
}

/// Per-run router state shared by connection handlers.
struct RouterState<'r> {
    router: &'r Router,
    started: Instant,
    http: LoopCounters,
    queries: AtomicU64,
    forward_errors: AtomicU64,
}

/// A stateless query router over a set of shard-subset nodes.
///
/// Build one with [`Router::discover`], then drive it with
/// [`Router::run`] over a bound [`Server`] listener.
pub struct Router {
    peers: Vec<RouterPeer>,
    num_vertices: u64,
    num_shards: usize,
    timeout: Duration,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("peers", &self.peer_summary())
            .field("num_vertices", &self.num_vertices)
            .finish()
    }
}

impl Router {
    /// Contact every peer's `GET /shards` once and build the routing
    /// table. Peers may be listed in any order; their claims are sorted
    /// by vertex range and must tile the whole product disjointly.
    ///
    /// # Errors
    ///
    /// A message naming the offending peer when one is unreachable,
    /// answers malformed JSON, disagrees with the others on the run's
    /// shape (`shards` / `num_vertices`), or leaves a gap/overlap in the
    /// claimed ranges.
    pub fn discover(peer_addrs: &[String], timeout: Duration) -> Result<Router, String> {
        if peer_addrs.is_empty() {
            return Err("router needs at least one peer".into());
        }
        let mut peers = Vec::with_capacity(peer_addrs.len());
        let mut shape: Option<(u64, u64)> = None; // (shards, num_vertices)
        for addr in peer_addrs {
            let fail = |detail: String| format!("peer {addr}: {detail}");
            let mut client = Client::connect_timeout(addr.as_str(), timeout)
                .map_err(|e| fail(format!("connect: {e}")))?;
            let (status, body) = client
                .get("/shards")
                .map_err(|e| fail(format!("GET /shards: {e}")))?;
            if status != 200 {
                return Err(fail(format!("GET /shards answered {status}")));
            }
            let doc = Json::parse(&body).map_err(|e| fail(format!("/shards JSON: {e}")))?;
            let num = |key: &str| -> Result<u64, String> {
                doc.req(key)
                    .and_then(|v| v.as_u64().ok_or_else(|| format!("{key} is not an integer")))
                    .map_err(|e| fail(format!("/shards: {e}")))
            };
            let subset = doc
                .req("subset")
                .ok()
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 2)
                .and_then(|a| Some((a[0].as_usize()?, a[1].as_usize()?)))
                .ok_or_else(|| fail("/shards: subset is not [lo, hi]".into()))?;
            // All peers must describe the same run.
            let this_shape = (num("shards")?, num("num_vertices")?);
            match shape {
                None => shape = Some(this_shape),
                Some(expect) if expect != this_shape => {
                    return Err(fail(format!(
                        "serves a different run ({} shards / {} vertices, \
                         expected {} / {})",
                        this_shape.0, this_shape.1, expect.0, expect.1
                    )))
                }
                Some(_) => {}
            }
            peers.push(RouterPeer {
                addr: addr.clone(),
                shards: subset.0..subset.1,
                vertices: num("vertex_lo")?..num("vertex_hi")?,
                pool: Mutex::new(vec![client]),
            });
        }
        let (num_shards, num_vertices) = shape.expect("at least one peer");
        // The claims must tile the run disjointly and completely.
        peers.sort_by_key(|p| p.shards.start);
        let mut next_shard = 0usize;
        let mut next_vertex = 0u64;
        for p in &peers {
            if p.shards.start != next_shard {
                return Err(format!(
                    "peer {} claims shards {}..{}, but the next unclaimed shard \
                     is {next_shard} (gap or overlap in the cluster's ownership map)",
                    p.addr, p.shards.start, p.shards.end
                ));
            }
            if p.vertices.start != next_vertex {
                return Err(format!(
                    "peer {} claims vertices {}..{}, expected the range to start \
                     at {next_vertex}",
                    p.addr, p.vertices.start, p.vertices.end
                ));
            }
            next_shard = p.shards.end;
            next_vertex = p.vertices.end;
        }
        if next_shard as u64 != num_shards || next_vertex != num_vertices {
            return Err(format!(
                "peers claim shards 0..{next_shard} / vertices 0..{next_vertex}, \
                 run has {num_shards} shards / {num_vertices} vertices \
                 (a node is missing from --peers)"
            ));
        }
        Ok(Router {
            peers,
            num_vertices,
            num_shards: num_shards as usize,
            timeout,
        })
    }

    /// One `addr → shards a..b, vertices x..y` line per peer, for startup
    /// narration.
    pub fn peer_summary(&self) -> Vec<String> {
        self.peers
            .iter()
            .map(|p| {
                format!(
                    "{} → shards {}..{}, vertices {}..{}",
                    p.addr, p.shards.start, p.shards.end, p.vertices.start, p.vertices.end
                )
            })
            .collect()
    }

    /// Product vertex count of the routed run.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Index of the peer owning `v`'s row. Out-of-range vertices go to
    /// the first peer: its engine produces the exact out-of-range error
    /// a single-node server would, keeping the client-visible bytes
    /// identical. `/query` and `/batch` both route through here, so the
    /// policy cannot diverge between them.
    fn peer_index_for(&self, v: u64) -> usize {
        let i = self.peers.partition_point(|p| p.vertices.end <= v);
        if i < self.peers.len() {
            i
        } else {
            0
        }
    }

    /// The peer owning `v`'s row (see [`Router::peer_index_for`]).
    fn peer_for(&self, v: u64) -> &RouterPeer {
        &self.peers[self.peer_index_for(v)]
    }

    /// Forward one request to `peer`, pooling connections and retrying a
    /// stale pooled connection once, like the engine's row fetches.
    fn forward(
        &self,
        peer: &RouterPeer,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, String), String> {
        let fail = |detail: String| format!("peer {}: {detail}", peer.addr);
        let do_req = |client: &mut Client| -> io::Result<(u16, String)> {
            match method {
                "GET" => client.get(path),
                _ => client.post(path, body),
            }
        };
        let pooled = peer.pool.lock().unwrap().pop();
        let had_pooled = pooled.is_some();
        let mut client = match pooled {
            Some(c) => c,
            None => Client::connect_timeout(peer.addr.as_str(), self.timeout)
                .map_err(|e| fail(format!("connect: {e}")))?,
        };
        let resp = match do_req(&mut client) {
            Ok(r) => r,
            Err(first) => {
                drop(client);
                if !had_pooled {
                    return Err(fail(format!("{method} {path}: {first}")));
                }
                client = Client::connect_timeout(peer.addr.as_str(), self.timeout)
                    .map_err(|e| fail(format!("reconnect after {first}: {e}")))?;
                do_req(&mut client).map_err(|e| fail(format!("{method} {path} (retried): {e}")))?
            }
        };
        peer.pool.lock().unwrap().push(client);
        Ok(resp)
    }

    /// Route until `shutdown` becomes `true`, accepting on the bound
    /// `front` listener, then return the run's totals. Mirrors
    /// [`Server::run`]'s connection model and shutdown contract exactly;
    /// the router itself records no mismatches (those live on the
    /// nodes — see `/stats`).
    ///
    /// # Errors
    ///
    /// Like [`Server::run`], the loop itself does not fail; the
    /// `io::Result` is kept for interface stability.
    pub fn run(
        &self,
        front: &Server,
        opts: &ServerOptions,
        shutdown: &AtomicBool,
    ) -> io::Result<RouterReport> {
        let state = RouterState {
            router: self,
            started: Instant::now(),
            http: LoopCounters::new(),
            queries: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
        };
        serve_connections(
            front.listener(),
            &opts.loop_config(),
            "kron route",
            shutdown,
            &state.http,
            &|req| route(&state, req),
        );
        Ok(RouterReport {
            requests: state.http.requests.load(Ordering::Relaxed),
            bad_requests: state.http.bad_requests.load(Ordering::Relaxed),
            queries: state.queries.load(Ordering::Relaxed),
            forward_errors: state.forward_errors.load(Ordering::Relaxed),
        })
    }
}

/// A peer's slot in a [`fan_out`] round: `None` when the peer was
/// skipped, otherwise the forward's outcome.
type FanOutSlot<'r> = (&'r RouterPeer, Option<Result<(u16, String), String>>);

/// Forward `method path` to every peer concurrently — a hung peer costs
/// the caller one timeout, not one per peer. `body_of(i)` returns the
/// body for peer `i`, or `None` to skip it (a batch with no queries for
/// a node must not fail on that node being unreachable). Results come
/// back in peer order, `None` for skipped peers.
fn fan_out<'r>(
    r: &'r Router,
    method: &'static str,
    path: &str,
    body_of: &(impl Fn(usize) -> Option<&'r [u8]> + Sync),
) -> Vec<FanOutSlot<'r>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = r
            .peers
            .iter()
            .enumerate()
            .map(|(i, p)| body_of(i).map(|body| s.spawn(move || r.forward(p, method, path, body))))
            .collect();
        r.peers
            .iter()
            .zip(handles)
            .map(|(p, h)| (p, h.map(|h| h.join().unwrap())))
            .collect()
    })
}

/// Dispatch one request: parse/validate locally (same errors as a node),
/// forward the rest.
fn route(state: &RouterState<'_>, req: &http::Request) -> (u16, &'static str, Vec<u8>) {
    const TEXT: &str = "text/plain; charset=utf-8";
    const JSON: &str = "application/json";
    let r = state.router;
    let gateway_err = |detail: String| -> (u16, &'static str, Vec<u8>) {
        state.forward_errors.fetch_add(1, Ordering::Relaxed);
        (502, TEXT, format!("error: {detail}\n").into_bytes())
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            // Probe every peer concurrently: one hung node must cost the
            // probe one timeout, not one per peer — monitoring timeouts
            // are usually shorter than peers × 5 s.
            for (p, res) in fan_out(r, "GET", "/healthz", &|_| Some(&[][..])) {
                match res.expect("healthz skips no peer") {
                    Ok((200, _)) => {}
                    Ok((status, _)) => {
                        return (
                            503,
                            TEXT,
                            format!("error: peer {} unhealthy (status {status})\n", p.addr)
                                .into_bytes(),
                        )
                    }
                    Err(e) => return (503, TEXT, format!("error: {e}\n").into_bytes()),
                }
            }
            (200, TEXT, b"ok\n".to_vec())
        }
        ("GET", "/query") => {
            let Some(line) = req.query_param("q") else {
                return (400, TEXT, b"error: missing query parameter q\n".to_vec());
            };
            match Query::parse(line) {
                Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
                Ok(query) => {
                    state.queries.fetch_add(1, Ordering::Relaxed);
                    let peer = r.peer_for(query.routing_vertex());
                    let path = format!("/query?q={}", encode_query_component(&query.to_string()));
                    match r.forward(peer, "GET", &path, b"") {
                        // relay the node's answer verbatim, whatever its
                        // status — the router adds nothing on this path
                        Ok((status, body)) => (status, TEXT, body.into_bytes()),
                        Err(e) => gateway_err(e),
                    }
                }
            }
        }
        ("POST", "/batch") => {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return (400, TEXT, b"error: body is not UTF-8\n".to_vec());
            };
            match batch::parse_queries(text) {
                Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
                Ok(queries) => {
                    state
                        .queries
                        .fetch_add(queries.len() as u64, Ordering::Relaxed);
                    // Split into per-peer sub-batches (input order is
                    // preserved within each), forward them concurrently
                    // (wall clock tracks the slowest node, not the sum),
                    // then reassemble the answer lines by original index —
                    // byte-identical to a single node walking the batch in
                    // order.
                    let mut by_peer: Vec<(Vec<usize>, String)> = r
                        .peers
                        .iter()
                        .map(|_| (Vec::new(), String::new()))
                        .collect();
                    for (i, q) in queries.iter().enumerate() {
                        let peer_idx = r.peer_index_for(q.routing_vertex());
                        by_peer[peer_idx].0.push(i);
                        by_peer[peer_idx].1.push_str(&format!("{q}\n"));
                    }
                    let responses = fan_out(r, "POST", "/batch", &|i: usize| {
                        let (indices, body) = &by_peer[i];
                        (!indices.is_empty()).then_some(body.as_bytes())
                    });
                    let mut lines: Vec<Option<String>> = vec![None; queries.len()];
                    let mut total_len = 0usize;
                    for ((peer, res), (indices, _)) in responses.into_iter().zip(&by_peer) {
                        let Some(res) = res else {
                            continue; // no queries route to this peer
                        };
                        let (status, resp) = match res {
                            Ok(x) => x,
                            Err(e) => return gateway_err(e),
                        };
                        if status != 200 {
                            return gateway_err(format!(
                                "peer {}: /batch answered {status}: {}",
                                peer.addr,
                                resp.trim()
                            ));
                        }
                        let answer_lines: Vec<&str> = resp.lines().collect();
                        if answer_lines.len() != indices.len() {
                            return gateway_err(format!(
                                "peer {}: /batch returned {} lines for {} queries",
                                peer.addr,
                                answer_lines.len(),
                                indices.len()
                            ));
                        }
                        for (&i, line) in indices.iter().zip(answer_lines) {
                            total_len += line.len() + 1;
                            lines[i] = Some(line.to_string());
                        }
                        if total_len > MAX_BATCH_RESPONSE {
                            return (
                                413,
                                TEXT,
                                format!(
                                    "error: batch response exceeds {MAX_BATCH_RESPONSE} \
                                     bytes — split the batch\n"
                                )
                                .into_bytes(),
                            );
                        }
                    }
                    let mut out = String::with_capacity(total_len);
                    for line in lines.into_iter().flatten() {
                        out.push_str(&line);
                        out.push('\n');
                    }
                    (200, TEXT, out.into_bytes())
                }
            }
        }
        ("GET", "/stats") => {
            // Merge rule (normative in ARCHITECTURE.md): per-peer docs
            // verbatim under `peers` (ascending vertex range), the named
            // counters summed under `totals`, the router's own counters
            // at the top level. Any peer failing makes the whole merge a
            // 502 — a partial cluster total would silently under-count.
            let mut peer_docs = Vec::with_capacity(r.peers.len());
            let mut totals = [0u64; 6];
            const KEYS: [&str; 6] = [
                "queries",
                "errors",
                "bad_requests",
                "sampled_checks",
                "mismatch_count",
                "rows_served",
            ];
            for p in &r.peers {
                let (status, body) = match r.forward(p, "GET", "/stats", b"") {
                    Ok(x) => x,
                    Err(e) => return gateway_err(e),
                };
                if status != 200 {
                    return gateway_err(format!("peer {}: /stats answered {status}", p.addr));
                }
                let doc = match Json::parse(&body) {
                    Ok(d) => d,
                    Err(e) => return gateway_err(format!("peer {}: /stats JSON: {e}", p.addr)),
                };
                for (i, key) in KEYS.iter().enumerate() {
                    totals[i] += doc.get(key).and_then(Json::as_u64).unwrap_or(0);
                }
                peer_docs.push(Json::obj(vec![
                    ("peer", Json::str(&p.addr)),
                    (
                        "shards",
                        Json::Arr(vec![Json::num(p.shards.start), Json::num(p.shards.end)]),
                    ),
                    ("vertex_lo", Json::num(p.vertices.start)),
                    ("vertex_hi", Json::num(p.vertices.end)),
                    ("stats", doc),
                ]));
            }
            let doc = Json::obj(vec![
                ("role", Json::str("router")),
                (
                    "uptime_secs",
                    Json::num(state.started.elapsed().as_secs_f64()),
                ),
                (
                    "requests",
                    Json::num(state.http.requests.load(Ordering::Relaxed)),
                ),
                (
                    "bad_requests",
                    Json::num(state.http.bad_requests.load(Ordering::Relaxed)),
                ),
                ("queries", Json::num(state.queries.load(Ordering::Relaxed))),
                (
                    "forward_errors",
                    Json::num(state.forward_errors.load(Ordering::Relaxed)),
                ),
                ("connections", state.http.conns.to_json()),
                (
                    "totals",
                    Json::Obj(
                        KEYS.iter()
                            .zip(totals)
                            .map(|(k, v)| (k.to_string(), Json::num(v)))
                            .collect(),
                    ),
                ),
                ("peers", Json::Arr(peer_docs)),
            ]);
            (200, JSON, format!("{doc}\n").into_bytes())
        }
        ("GET", "/shards") => {
            // The cluster presents as one complete node — a router (or a
            // router of routers) in front of it needs nothing else.
            let doc = Json::obj(vec![
                ("shards", Json::num(r.num_shards)),
                (
                    "subset",
                    Json::Arr(vec![Json::num(0), Json::num(r.num_shards)]),
                ),
                ("vertex_lo", Json::num(0)),
                ("vertex_hi", Json::num(r.num_vertices)),
                ("num_vertices", Json::num(r.num_vertices)),
            ]);
            (200, JSON, format!("{doc}\n").into_bytes())
        }
        ("GET", "/row") => (
            404,
            TEXT,
            b"error: the router serves no rows (fetch from the owning node)\n".to_vec(),
        ),
        (_, "/healthz" | "/query" | "/batch" | "/stats" | "/row" | "/shards") => (
            405,
            TEXT,
            b"error: method not allowed for this endpoint\n".to_vec(),
        ),
        // 501, not 404: the path may well exist on the nodes (the
        // analytics-job API under /jobs is node-local state — an id
        // minted by one node means nothing to its peers, so the router
        // deliberately does not forward it). Name what *is* served so a
        // client landing here can tell "wrong tier" from "no such thing".
        _ => (
            501,
            JSON,
            b"{\"error\":\"not implemented by the router\",\
              \"supported\":[\"/healthz\",\"/query\",\"/batch\",\"/stats\",\"/shards\"],\
              \"note\":\"/jobs is node-local: submit to a node, not the router\"}\n"
                .to_vec(),
        ),
    }
}
