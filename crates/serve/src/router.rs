//! The stateless forwarding router: one address in front of a cluster of
//! shard-subset nodes, speaking the **unchanged single-node wire
//! protocol** to clients.
//!
//! `kron route --peers ADDR,ADDR,… --listen ADDR` owns no shards, opens
//! no run directory, and keeps no query state — it learns each peer's
//! claimed vertex range at startup (`GET /shards`), validates that the
//! claims **cover** the whole product (overlapping claims are
//! **replicas**), and then:
//!
//! * forwards `GET /query` to a node owning the query's routing vertex
//!   ([`crate::Query::routing_vertex`]), rotating round-robin over the
//!   vertex's replicas, and relays the answer verbatim;
//! * splits `POST /batch` bodies into per-node sub-batches, forwards them,
//!   and reassembles the answer lines **in input order** — byte-identical
//!   to what one node serving the whole run directory would produce;
//! * merges `GET /stats` across peers (per-peer documents plus summed
//!   totals and per-replica health; see `ARCHITECTURE.md` § "Cluster
//!   serving" for the normative merge rules);
//! * fans `GET /healthz` out to every peer (`ok` only when all are).
//!
//! A failed forward (connect error, timeout, 5xx, short sub-batch
//! response) transparently **fails over** to the next replica; per-peer
//! consecutive-failure counters drive health ejection exactly as on the
//! nodes (down after 3 consecutive failures, probed via `GET /healthz`
//! on a doubling backoff, restored on success). Only when *every* replica of a vertex has failed does
//! the client see an error: a single `502 Bad Gateway` naming each
//! replica tried — the router never invents an answer. Parse errors
//! (`400`) are produced by the router itself with the same messages a
//! node would emit, so clients cannot tell a router from a node on the
//! error path either.
//!
//! With `--rediscover SECS` ([`Router::set_rediscover`]) the router
//! re-runs discovery on a timer, so nodes can join/leave a live cluster:
//! a returning node is restored the moment it answers `/shards`, a
//! vanished one keeps its last-known claim (health-ejected until it
//! probes healthy), and a table that would leave a shard uncovered is
//! rejected, keeping the last good one.
//!
//! ## Example
//!
//! ```no_run
//! use kron_serve::{Router, Server, ServerOptions};
//! use std::sync::atomic::AtomicBool;
//! use std::time::Duration;
//!
//! // Three nodes already serve (overlapping) shard subsets.
//! let mut router = Router::discover(
//!     &["10.0.0.1:8080".into(), "10.0.0.2:8080".into(), "10.0.0.3:8080".into()],
//!     Duration::from_secs(5),
//! )
//! .unwrap();
//! router.set_rediscover(Duration::from_secs(10));
//! let front = Server::bind("0.0.0.0:8080").unwrap();
//! let stop = AtomicBool::new(false);
//! let report = router
//!     .run(&front, &ServerOptions::default(), &stop)
//!     .unwrap();
//! println!("{report}");
//! ```

use crate::batch::{self, Query};
use crate::cluster::{probe_healthz, Gate, PeerHealth};
use crate::event_loop::serve_connections;
use crate::http::{self, encode_query_component, Client};
use crate::server::{LoopCounters, Server, ServerOptions, MAX_BATCH_RESPONSE};
use kron_stream::json::Json;
use std::io;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One peer's parsed `GET /shards` answer: its shard claim, vertex
/// span, the run shape `(shards, num_vertices)`, and the connection the
/// exchange left open (seeded into the peer's pool).
type Discovered = (Range<usize>, Range<u64>, (u64, u64), Client);

/// One discovered peer: its address, its claim, a pool of idle
/// keep-alive connections, and its health state.
struct RouterPeer {
    addr: String,
    shards: Range<usize>,
    vertices: Range<u64>,
    pool: Mutex<Vec<Client>>,
    health: PeerHealth,
}

/// Idle connections kept per peer; re-discovery seeds one per tick, so
/// the pool is capped to stop a long-lived router accumulating sockets.
const POOL_CAP: usize = 8;

impl RouterPeer {
    fn pool_push(&self, client: Client) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }
}

/// One immutable routing table: the discovered peers of one
/// (re-)discovery round. Handlers snapshot it per request, so a
/// concurrent re-discovery swap never tears a request in half.
struct RouterTable {
    /// Ascending by claim (then address) — the `/stats` peer order.
    peers: Vec<Arc<RouterPeer>>,
    num_vertices: u64,
    num_shards: usize,
}

impl RouterTable {
    /// Indices of the peers whose claim contains `v` — the vertex's
    /// replicas. Out-of-range vertices go to the replicas of the first
    /// vertex range: their engines produce the exact out-of-range error a
    /// single-node server would, keeping the client-visible bytes
    /// identical. `/query` and `/batch` both route through here, so the
    /// policy cannot diverge between them.
    fn candidates_for(&self, v: u64) -> Vec<usize> {
        let own: Vec<usize> = self
            .peers
            .iter()
            .enumerate()
            .filter(|(_, p)| p.vertices.contains(&v))
            .map(|(i, _)| i)
            .collect();
        if !own.is_empty() {
            return own;
        }
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, p)| p.vertices.start == 0)
            .map(|(i, _)| i)
            .collect()
    }

    fn addr_list(&self) -> String {
        self.peers
            .iter()
            .map(|p| p.addr.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Totals of one router run, returned by [`Router::run`] after shutdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterReport {
    /// HTTP requests handled (all endpoints).
    pub requests: u64,
    /// Requests rejected as malformed (bad framing, bad query syntax).
    pub bad_requests: u64,
    /// Query lines forwarded to peers (each `/query`, plus each line of
    /// every `/batch`).
    pub queries: u64,
    /// Forwards that failed on **every** replica (the client saw a 502).
    pub forward_errors: u64,
    /// Single-replica failures that moved a forward on to the next
    /// replica (the client saw nothing).
    pub failovers: u64,
}

impl std::fmt::Display for RouterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} malformed), {} queries forwarded, {} failovers, \
             {} forward errors",
            self.requests, self.bad_requests, self.queries, self.failovers, self.forward_errors
        )
    }
}

/// Per-run router state shared by connection handlers.
struct RouterState<'r> {
    router: &'r Router,
    started: Instant,
    http: LoopCounters,
    queries: AtomicU64,
    forward_errors: AtomicU64,
}

/// A replica-aware query router over a set of shard-subset nodes.
///
/// Build one with [`Router::discover`], optionally enable periodic
/// re-discovery with [`Router::set_rediscover`], then drive it with
/// [`Router::run`] over a bound [`Server`] listener.
pub struct Router {
    table: RwLock<Arc<RouterTable>>,
    /// The `--peers` list as given — re-discovery re-contacts these.
    peer_addrs: Vec<String>,
    timeout: Duration,
    rediscover: Option<Duration>,
    /// Round-robin cursor over replicas.
    rr: AtomicUsize,
    /// Failovers survive table swaps (per-peer counters reset when a
    /// peer's claim changes), so `/stats` never under-reports them.
    failovers: AtomicU64,
    rediscoveries: AtomicU64,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("peers", &self.peer_summary())
            .field("num_vertices", &self.num_vertices())
            .finish()
    }
}

impl Router {
    /// Contact every peer's `GET /shards` once and build the routing
    /// table. Peers may be listed in any order; their claims must
    /// **cover** the whole product — overlapping claims are replicas.
    ///
    /// # Errors
    ///
    /// A message naming the offending peer when one is unreachable,
    /// answers malformed JSON, or disagrees with the others on the run's
    /// shape (`shards` / `num_vertices`); or naming the first uncovered
    /// shard when the claims leave a gap.
    pub fn discover(peer_addrs: &[String], timeout: Duration) -> Result<Router, String> {
        let table = Self::build_table(peer_addrs, timeout, None)?;
        Ok(Router {
            table: RwLock::new(Arc::new(table)),
            peer_addrs: peer_addrs.to_vec(),
            timeout,
            rediscover: None,
            rr: AtomicUsize::new(0),
            failovers: AtomicU64::new(0),
            rediscoveries: AtomicU64::new(0),
        })
    }

    /// Re-run discovery every `every` during [`Router::run`], so nodes
    /// can join/leave the cluster without a router restart.
    pub fn set_rediscover(&mut self, every: Duration) {
        self.rediscover = Some(every);
    }

    /// Completed re-discovery rounds (table swaps).
    pub fn rediscoveries(&self) -> u64 {
        self.rediscoveries.load(Ordering::Relaxed)
    }

    /// One peer's `GET /shards` exchange, parsed.
    fn discover_one(addr: &str, timeout: Duration) -> Result<Discovered, String> {
        let fail = |detail: String| format!("peer {addr}: {detail}");
        let mut client =
            Client::connect_timeout(addr, timeout).map_err(|e| fail(format!("connect: {e}")))?;
        let (status, body) = client
            .get("/shards")
            .map_err(|e| fail(format!("GET /shards: {e}")))?;
        if status != 200 {
            return Err(fail(format!("GET /shards answered {status}")));
        }
        let doc = Json::parse(&body).map_err(|e| fail(format!("/shards JSON: {e}")))?;
        let num = |key: &str| -> Result<u64, String> {
            doc.req(key)
                .and_then(|v| v.as_u64().ok_or_else(|| format!("{key} is not an integer")))
                .map_err(|e| fail(format!("/shards: {e}")))
        };
        let subset = doc
            .req("subset")
            .ok()
            .and_then(Json::as_arr)
            .filter(|a| a.len() == 2)
            .and_then(|a| Some((a[0].as_usize()?, a[1].as_usize()?)))
            .ok_or_else(|| fail("/shards: subset is not [lo, hi]".into()))?;
        let shape = (num("shards")?, num("num_vertices")?);
        Ok((
            subset.0..subset.1,
            num("vertex_lo")?..num("vertex_hi")?,
            shape,
            client,
        ))
    }

    /// Build a routing table from `peer_addrs`. At startup (`prev` is
    /// `None`) every peer must answer; during re-discovery an unreachable
    /// peer keeps its last-known claim (still health-ejected) and a
    /// never-seen one is skipped, so a flapping node cannot take the
    /// router down with it.
    fn build_table(
        peer_addrs: &[String],
        timeout: Duration,
        prev: Option<&RouterTable>,
    ) -> Result<RouterTable, String> {
        if peer_addrs.is_empty() {
            return Err("router needs at least one peer".into());
        }
        let mut peers: Vec<Arc<RouterPeer>> = Vec::with_capacity(peer_addrs.len());
        let mut shape: Option<(u64, u64)> = prev.map(|t| (t.num_shards as u64, t.num_vertices));
        for addr in peer_addrs {
            match Self::discover_one(addr, timeout) {
                Ok((shards, vertices, this_shape, client)) => {
                    match shape {
                        None => shape = Some(this_shape),
                        Some(expect) if expect != this_shape => {
                            return Err(format!(
                                "peer {addr}: serves a different run ({} shards / {} \
                                 vertices, expected {} / {})",
                                this_shape.0, this_shape.1, expect.0, expect.1
                            ))
                        }
                        Some(_) => {}
                    }
                    // An unchanged claim keeps its pool, health, and
                    // counters; answering /shards is also proof of life,
                    // restoring an ejected peer.
                    let reused = prev.and_then(|t| {
                        t.peers
                            .iter()
                            .find(|p| {
                                p.addr == *addr && p.shards == shards && p.vertices == vertices
                            })
                            .cloned()
                    });
                    match reused {
                        Some(p) => {
                            p.health.record_success();
                            p.pool_push(client);
                            peers.push(p);
                        }
                        None => peers.push(Arc::new(RouterPeer {
                            addr: addr.clone(),
                            shards,
                            vertices,
                            pool: Mutex::new(vec![client]),
                            health: PeerHealth::new(),
                        })),
                    }
                }
                Err(e) => {
                    let carried =
                        prev.and_then(|t| t.peers.iter().find(|p| p.addr == *addr).cloned());
                    match carried {
                        Some(p) => peers.push(p),
                        None if prev.is_none() => return Err(e),
                        None => {} // a joining node that is not up yet
                    }
                }
            }
        }
        let (num_shards, num_vertices) =
            shape.ok_or_else(|| "no peer answered GET /shards".to_string())?;
        let num_shards = num_shards as usize;
        peers.sort_by(|a, b| {
            (a.shards.start, a.shards.end, &a.addr).cmp(&(b.shards.start, b.shards.end, &b.addr))
        });
        // The claims must cover the run; overlap is replication.
        for s in 0..num_shards {
            if !peers.iter().any(|p| p.shards.contains(&s)) {
                return Err(format!(
                    "cluster ownership map incomplete: shard {s} is not claimed \
                     by any --peers node (a node is missing from --peers)"
                ));
            }
        }
        Ok(RouterTable {
            peers,
            num_vertices,
            num_shards,
        })
    }

    /// Current table snapshot (cheap: one `Arc` clone under a read lock).
    fn table(&self) -> Arc<RouterTable> {
        self.table.read().unwrap().clone()
    }

    /// One re-discovery round: build a fresh table from the configured
    /// peers and swap it in; on failure (a shape conflict, or coverage
    /// lost) the last good table stays.
    fn rediscover_tick(&self) {
        let prev = self.table();
        if let Ok(next) = Self::build_table(&self.peer_addrs, self.timeout, Some(&prev)) {
            *self.table.write().unwrap() = Arc::new(next);
            self.rediscoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One `addr → shards a..b, vertices x..y` line per peer, for startup
    /// narration.
    pub fn peer_summary(&self) -> Vec<String> {
        self.table()
            .peers
            .iter()
            .map(|p| {
                format!(
                    "{} → shards {}..{}, vertices {}..{}",
                    p.addr, p.shards.start, p.shards.end, p.vertices.start, p.vertices.end
                )
            })
            .collect()
    }

    /// Product vertex count of the routed run.
    pub fn num_vertices(&self) -> u64 {
        self.table().num_vertices
    }

    /// Health-gate one peer before a forward: an up peer passes, a down
    /// one is probed when its backoff has elapsed and skipped otherwise.
    fn admit(&self, peer: &RouterPeer, failures: &mut Vec<String>) -> bool {
        match peer.health.gate() {
            Gate::Up => true,
            Gate::ProbeDue => {
                if probe_healthz(&peer.addr, self.timeout) {
                    peer.health.record_success();
                    true
                } else {
                    peer.health.record_probe_failure();
                    failures.push(format!("peer {}: down (probe failed)", peer.addr));
                    false
                }
            }
            Gate::Skip => {
                failures.push(format!("peer {}: down (awaiting probe)", peer.addr));
                false
            }
        }
    }

    /// Forward one request to one peer, pooling connections and retrying
    /// a stale pooled connection once, like the engine's row fetches.
    fn forward(
        &self,
        peer: &RouterPeer,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, String), String> {
        let fail = |detail: String| format!("peer {}: {detail}", peer.addr);
        let do_req = |client: &mut Client| -> io::Result<(u16, String)> {
            match method {
                "GET" => client.get(path),
                _ => client.post(path, body),
            }
        };
        let pooled = peer.pool.lock().unwrap().pop();
        let had_pooled = pooled.is_some();
        let mut client = match pooled {
            Some(c) => c,
            None => Client::connect_timeout(peer.addr.as_str(), self.timeout)
                .map_err(|e| fail(format!("connect: {e}")))?,
        };
        let resp = match do_req(&mut client) {
            Ok(r) => r,
            Err(first) => {
                drop(client);
                if !had_pooled {
                    return Err(fail(format!("{method} {path}: {first}")));
                }
                client = Client::connect_timeout(peer.addr.as_str(), self.timeout)
                    .map_err(|e| fail(format!("reconnect after {first}: {e}")))?;
                do_req(&mut client).map_err(|e| fail(format!("{method} {path} (retried): {e}")))?
            }
        };
        peer.pool_push(client);
        Ok(resp)
    }

    /// Forward with failover: rotate round-robin over `candidates`,
    /// moving on when a replica is down, unreachable, or answers 5xx.
    /// Any other answer is relayed verbatim — it is deterministic, and
    /// every replica of a consistent cluster would repeat it.
    fn forward_failover(
        &self,
        table: &RouterTable,
        candidates: &[usize],
        method: &'static str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, String), String> {
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        let mut failures: Vec<String> = Vec::new();
        for k in 0..candidates.len() {
            let peer = &table.peers[candidates[(start + k) % candidates.len()]];
            if !self.admit(peer, &mut failures) {
                continue;
            }
            match self.forward(peer, method, path, body) {
                Ok((status, resp)) if status >= 500 => {
                    peer.health.record_failure();
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    failures.push(format!(
                        "peer {}: {method} answered {status}: {}",
                        peer.addr,
                        resp.trim()
                    ));
                }
                Ok(resp) => {
                    peer.health.record_success();
                    peer.health.record_served();
                    return Ok(resp);
                }
                Err(e) => {
                    peer.health.record_failure();
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    failures.push(e);
                }
            }
        }
        Err(format!("all replicas failed: {}", failures.join("; ")))
    }

    /// Route until `shutdown` becomes `true`, accepting on the bound
    /// `front` listener, then return the run's totals. Mirrors
    /// [`Server::run`]'s connection model and shutdown contract exactly;
    /// the router itself records no mismatches (those live on the
    /// nodes — see `/stats`). When re-discovery is enabled
    /// ([`Router::set_rediscover`]) a timer thread re-runs discovery at
    /// that interval until shutdown.
    ///
    /// # Errors
    ///
    /// Like [`Server::run`], the loop itself does not fail; the
    /// `io::Result` is kept for interface stability.
    pub fn run(
        &self,
        front: &Server,
        opts: &ServerOptions,
        shutdown: &AtomicBool,
    ) -> io::Result<RouterReport> {
        let state = RouterState {
            router: self,
            started: Instant::now(),
            http: LoopCounters::new(),
            queries: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
        };
        std::thread::scope(|s| {
            let timer = self.rediscover.map(|every| {
                s.spawn(move || {
                    let mut last = Instant::now();
                    while !shutdown.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(25));
                        if last.elapsed() >= every {
                            self.rediscover_tick();
                            last = Instant::now();
                        }
                    }
                })
            });
            serve_connections(
                front.listener(),
                &opts.loop_config(),
                "kron route",
                shutdown,
                &state.http,
                &|req| route(&state, req),
            );
            if let Some(t) = timer {
                t.join().unwrap();
            }
        });
        Ok(RouterReport {
            requests: state.http.requests.load(Ordering::Relaxed),
            bad_requests: state.http.bad_requests.load(Ordering::Relaxed),
            queries: state.queries.load(Ordering::Relaxed),
            forward_errors: state.forward_errors.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
        })
    }
}

/// A peer's slot in a [`fan_out`] round: `None` when the peer was
/// skipped, otherwise the forward's outcome.
type FanOutSlot<'t> = (&'t Arc<RouterPeer>, Option<Result<(u16, String), String>>);

/// Forward `method path` to every peer of `table` concurrently — a hung
/// peer costs the caller one timeout, not one per peer. `body_of(i)`
/// returns the body for peer `i`, or `None` to skip it (a batch with no
/// queries for a node must not fail on that node being unreachable).
/// Results come back in peer order, `None` for skipped peers.
fn fan_out<'t, 'b>(
    r: &Router,
    table: &'t RouterTable,
    method: &'static str,
    path: &str,
    body_of: &(impl Fn(usize) -> Option<&'b [u8]> + Sync),
) -> Vec<FanOutSlot<'t>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = table
            .peers
            .iter()
            .enumerate()
            .map(|(i, p)| body_of(i).map(|body| s.spawn(move || r.forward(p, method, path, body))))
            .collect();
        table
            .peers
            .iter()
            .zip(handles)
            .map(|(p, h)| (p, h.map(|h| h.join().unwrap())))
            .collect()
    })
}

/// Dispatch one request: parse/validate locally (same errors as a node),
/// forward the rest.
fn route(state: &RouterState<'_>, req: &http::Request) -> (u16, &'static str, Vec<u8>) {
    const TEXT: &str = "text/plain; charset=utf-8";
    const JSON: &str = "application/json";
    let r = state.router;
    let gateway_err = |detail: String| -> (u16, &'static str, Vec<u8>) {
        state.forward_errors.fetch_add(1, Ordering::Relaxed);
        (502, TEXT, format!("error: {detail}\n").into_bytes())
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let table = r.table();
            // Probe every peer concurrently: one hung node must cost the
            // probe one timeout, not one per peer — monitoring timeouts
            // are usually shorter than peers × 5 s. Health state is not
            // consulted or updated here: a monitoring probe reports the
            // cluster as it is right now.
            for (p, res) in fan_out(r, &table, "GET", "/healthz", &|_| Some(&[][..])) {
                match res.expect("healthz skips no peer") {
                    Ok((200, _)) => {}
                    Ok((status, _)) => {
                        return (
                            503,
                            TEXT,
                            format!("error: peer {} unhealthy (status {status})\n", p.addr)
                                .into_bytes(),
                        )
                    }
                    Err(e) => return (503, TEXT, format!("error: {e}\n").into_bytes()),
                }
            }
            (200, TEXT, b"ok\n".to_vec())
        }
        ("GET", "/query") => {
            let Some(line) = req.query_param("q") else {
                return (400, TEXT, b"error: missing query parameter q\n".to_vec());
            };
            match Query::parse(line) {
                Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
                Ok(query) => {
                    state.queries.fetch_add(1, Ordering::Relaxed);
                    let table = r.table();
                    let candidates = table.candidates_for(query.routing_vertex());
                    let path = format!("/query?q={}", encode_query_component(&query.to_string()));
                    match r.forward_failover(&table, &candidates, "GET", &path, b"") {
                        // relay the winning node's answer verbatim,
                        // whatever its (non-5xx) status — the router adds
                        // nothing on this path
                        Ok((status, body)) => (status, TEXT, body.into_bytes()),
                        Err(e) => gateway_err(e),
                    }
                }
            }
        }
        ("GET", "/path") => {
            // Parse locally first (identical 400s to a node), then
            // forward the canonical form to a replica of `from`'s shard
            // — the node traverses cross-shard through its own /row
            // fetches, so any node holding the first row can answer.
            match crate::path::parse_path_params(req) {
                Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
                Ok((from, to, max_depth)) => {
                    state.queries.fetch_add(1, Ordering::Relaxed);
                    let table = r.table();
                    let candidates = table.candidates_for(from);
                    let mut path = format!("/path?from={from}&to={to}");
                    if let Some(k) = max_depth {
                        path.push_str(&format!("&max_depth={k}"));
                    }
                    match r.forward_failover(&table, &candidates, "GET", &path, b"") {
                        Ok((status, body)) => {
                            (status, if status == 200 { JSON } else { TEXT }, body.into_bytes())
                        }
                        Err(e) => gateway_err(e),
                    }
                }
            }
        }
        ("GET", "/khop") => {
            match crate::path::parse_khop_params(req) {
                Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
                Ok((v, k)) => {
                    state.queries.fetch_add(1, Ordering::Relaxed);
                    let table = r.table();
                    let candidates = table.candidates_for(v);
                    let path = format!("/khop?v={v}&k={k}");
                    match r.forward_failover(&table, &candidates, "GET", &path, b"") {
                        Ok((status, body)) => {
                            (status, if status == 200 { JSON } else { TEXT }, body.into_bytes())
                        }
                        Err(e) => gateway_err(e),
                    }
                }
            }
        }
        ("POST", "/batch") => {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return (400, TEXT, b"error: body is not UTF-8\n".to_vec());
            };
            match batch::parse_queries(text) {
                Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
                Ok(queries) => {
                    state
                        .queries
                        .fetch_add(queries.len() as u64, Ordering::Relaxed);
                    // Split into per-peer sub-batches (input order is
                    // preserved within each), forward them concurrently
                    // (wall clock tracks the slowest node, not the sum),
                    // then reassemble the answer lines by original index —
                    // byte-identical to a single node walking the batch in
                    // order. A failed sub-batch (transport, 5xx, short
                    // response) returns its queries to the pool and the
                    // next round re-assigns them to surviving replicas;
                    // the loop is bounded because every retry round
                    // excludes at least one more peer.
                    let table = r.table();
                    let rr_base = r.rr.fetch_add(1, Ordering::Relaxed);
                    let mut lines: Vec<Option<String>> = vec![None; queries.len()];
                    let mut excluded: Vec<bool> = vec![false; table.peers.len()];
                    let mut total_len = 0usize;
                    loop {
                        let remaining: Vec<usize> =
                            (0..queries.len()).filter(|&i| lines[i].is_none()).collect();
                        if remaining.is_empty() {
                            break;
                        }
                        // Gate each peer once per round (probing down
                        // peers whose backoff elapsed), not once per query.
                        let mut probe_failures = Vec::new();
                        let usable: Vec<bool> = table
                            .peers
                            .iter()
                            .enumerate()
                            .map(|(i, p)| !excluded[i] && r.admit(p, &mut probe_failures))
                            .collect();
                        let mut by_peer: Vec<(Vec<usize>, String)> = table
                            .peers
                            .iter()
                            .map(|_| (Vec::new(), String::new()))
                            .collect();
                        for &i in &remaining {
                            let cands: Vec<usize> = table
                                .candidates_for(queries[i].routing_vertex())
                                .into_iter()
                                .filter(|&c| usable[c])
                                .collect();
                            if cands.is_empty() {
                                return gateway_err(format!(
                                    "all replicas failed for batch query {:?} (peers: {})",
                                    queries[i].to_string(),
                                    table.addr_list()
                                ));
                            }
                            let pick = cands[(rr_base + i) % cands.len()];
                            by_peer[pick].0.push(i);
                            by_peer[pick].1.push_str(&format!("{}\n", queries[i]));
                        }
                        let responses = fan_out(r, &table, "POST", "/batch", &|i: usize| {
                            let (indices, body) = &by_peer[i];
                            (!indices.is_empty()).then_some(body.as_bytes())
                        });
                        for (idx, ((peer, res), (indices, _))) in
                            responses.into_iter().zip(&by_peer).enumerate()
                        {
                            let Some(res) = res else {
                                continue; // no queries route to this peer
                            };
                            // Transport failures, 5xx, and short responses
                            // fail over; any other non-200 is deterministic
                            // and surfaces (a retry would repeat it).
                            let failure = match res {
                                Err(e) => Some(e),
                                Ok((status, resp)) if status >= 500 => Some(format!(
                                    "peer {}: /batch answered {status}: {}",
                                    peer.addr,
                                    resp.trim()
                                )),
                                Ok((status, resp)) if status != 200 => {
                                    return gateway_err(format!(
                                        "peer {}: /batch answered {status}: {}",
                                        peer.addr,
                                        resp.trim()
                                    ));
                                }
                                Ok((_, resp)) => {
                                    let answer_lines: Vec<&str> = resp.lines().collect();
                                    if answer_lines.len() != indices.len() {
                                        Some(format!(
                                            "peer {}: /batch returned {} lines for {} queries",
                                            peer.addr,
                                            answer_lines.len(),
                                            indices.len()
                                        ))
                                    } else {
                                        peer.health.record_success();
                                        peer.health.record_served();
                                        for (&i, line) in indices.iter().zip(answer_lines) {
                                            total_len += line.len() + 1;
                                            lines[i] = Some(line.to_string());
                                        }
                                        None
                                    }
                                }
                            };
                            if failure.is_some() {
                                peer.health.record_failure();
                                r.failovers.fetch_add(1, Ordering::Relaxed);
                                excluded[idx] = true;
                            }
                            if total_len > MAX_BATCH_RESPONSE {
                                return (
                                    413,
                                    TEXT,
                                    format!(
                                        "error: batch response exceeds {MAX_BATCH_RESPONSE} \
                                         bytes — split the batch\n"
                                    )
                                    .into_bytes(),
                                );
                            }
                        }
                    }
                    let mut out = String::with_capacity(total_len);
                    for line in lines.into_iter().flatten() {
                        out.push_str(&line);
                        out.push('\n');
                    }
                    (200, TEXT, out.into_bytes())
                }
            }
        }
        ("GET", "/stats") => {
            // Merge rule (normative in ARCHITECTURE.md): per-peer docs
            // verbatim under `peers` (ascending claim) with the peer's
            // replica-health fields beside them, the named counters
            // summed under `totals`, the router's own counters at the
            // top level. An unreachable peer reports `"up":false` and
            // `"stats":null` and is left out of the totals — the per-peer
            // nulls make the partiality visible, and a cluster running
            // degraded must still be observable (a down node taking
            // `/stats` down with it would blind monitoring exactly when
            // it matters).
            let table = r.table();
            let mut peer_docs = Vec::with_capacity(table.peers.len());
            let mut totals = [0u64; 6];
            const KEYS: [&str; 6] = [
                "queries",
                "errors",
                "bad_requests",
                "sampled_checks",
                "mismatch_count",
                "rows_served",
            ];
            let responses = fan_out(r, &table, "GET", "/stats", &|i: usize| {
                // don't pay a timeout per /stats call for a known-down
                // peer; it reports up:false, stats:null below
                table.peers[i].health.is_up().then_some(&[][..])
            });
            for (p, res) in responses {
                let stats = match res {
                    Some(Ok((200, body))) => Json::parse(&body).ok(),
                    _ => None,
                };
                if let Some(doc) = &stats {
                    for (i, key) in KEYS.iter().enumerate() {
                        totals[i] += doc.get(key).and_then(Json::as_u64).unwrap_or(0);
                    }
                }
                let mut fields = vec![
                    ("peer", Json::str(&p.addr)),
                    (
                        "shards",
                        Json::Arr(vec![Json::num(p.shards.start), Json::num(p.shards.end)]),
                    ),
                    ("vertex_lo", Json::num(p.vertices.start)),
                    ("vertex_hi", Json::num(p.vertices.end)),
                ];
                fields.extend(p.health.stats_fields());
                fields.push(("stats", stats.unwrap_or(Json::Null)));
                peer_docs.push(Json::obj(fields));
            }
            let doc = Json::obj(vec![
                ("role", Json::str("router")),
                (
                    "uptime_secs",
                    Json::num(state.started.elapsed().as_secs_f64()),
                ),
                (
                    "requests",
                    Json::num(state.http.requests.load(Ordering::Relaxed)),
                ),
                (
                    "bad_requests",
                    Json::num(state.http.bad_requests.load(Ordering::Relaxed)),
                ),
                ("queries", Json::num(state.queries.load(Ordering::Relaxed))),
                (
                    "forward_errors",
                    Json::num(state.forward_errors.load(Ordering::Relaxed)),
                ),
                ("failovers", Json::num(r.failovers.load(Ordering::Relaxed))),
                (
                    "rediscoveries",
                    Json::num(r.rediscoveries.load(Ordering::Relaxed)),
                ),
                ("connections", state.http.conns.to_json()),
                (
                    "totals",
                    Json::Obj(
                        KEYS.iter()
                            .zip(totals)
                            .map(|(k, v)| (k.to_string(), Json::num(v)))
                            .collect(),
                    ),
                ),
                ("peers", Json::Arr(peer_docs)),
            ]);
            (200, JSON, format!("{doc}\n").into_bytes())
        }
        ("GET", "/shards") => {
            // The cluster presents as one complete node — a router (or a
            // router of routers) in front of it needs nothing else.
            let table = r.table();
            let doc = Json::obj(vec![
                ("shards", Json::num(table.num_shards)),
                (
                    "subset",
                    Json::Arr(vec![Json::num(0), Json::num(table.num_shards)]),
                ),
                ("vertex_lo", Json::num(0)),
                ("vertex_hi", Json::num(table.num_vertices)),
                ("num_vertices", Json::num(table.num_vertices)),
            ]);
            (200, JSON, format!("{doc}\n").into_bytes())
        }
        ("GET", "/row") => (
            404,
            TEXT,
            b"error: the router serves no rows (fetch from the owning node)\n".to_vec(),
        ),
        (
            _,
            "/healthz" | "/query" | "/batch" | "/path" | "/khop" | "/stats" | "/row" | "/shards",
        ) => (
            405,
            TEXT,
            b"error: method not allowed for this endpoint\n".to_vec(),
        ),
        // 501, not 404: the path may well exist on the nodes (the
        // analytics-job API under /jobs is node-local state — an id
        // minted by one node means nothing to its peers, so the router
        // deliberately does not forward it). Name what *is* served so a
        // client landing here can tell "wrong tier" from "no such thing".
        _ => (
            501,
            JSON,
            b"{\"error\":\"not implemented by the router\",\
              \"supported\":[\"/healthz\",\"/query\",\"/batch\",\"/path\",\"/khop\",\"/stats\",\"/shards\"],\
              \"note\":\"/jobs is node-local: submit to a node, not the router\"}\n"
                .to_vec(),
        ),
    }
}
