//! # kron-serve — point queries straight off the mmap'd CSR shards
//!
//! The paper's end goal is *using* validated per-vertex/per-edge triangle
//! statistics at scale, not just generating them. `kron stream` (PR 1)
//! turns the implicit product `C = A ⊗ B` into durable CSR shards; this
//! crate is the first consumer of those artifacts: a **read-only query
//! engine** that answers the paper's headline statistics in place,
//! without ever loading the graph.
//!
//! * [`ServeEngine`] — opens a run directory via
//!   [`kron_stream::ShardSet`] (checksums validated once, every shard
//!   memory-mapped), then answers `degree(v)`, `neighbors(v)`,
//!   `has_edge(u, v)` (binary search in the sorted CSR row),
//!   per-vertex triangle participation `t_C(v)` and per-edge triangle
//!   participation `Δ_C[{u, v}]` (sorted-neighbor intersection across
//!   shards, via the `kron_triangles::slice` kernels) — all on zero-copy
//!   rows out of the mappings;
//! * [`AnswerSource`] — *where* answers come from: `Artifact` (the shard
//!   walk above), `Oracle` (the paper's closed forms evaluated on the run
//!   directory's factor copies via [`FactorOracle`] — degree and `t_C(v)`
//!   in `O(1)`, no shard I/O), or `CrossCheck` (compute both, return the
//!   artifact answer, count and log every disagreement — a live
//!   conformance monitor for corrupted or stale run directories);
//! * [`run_batch`] — the batched concurrent driver: a [`Query`] list fans
//!   out over worker threads, each query routing to its shard(s), with a
//!   [`QueryStats`] latency/throughput report (throughput, latency
//!   percentiles, the paper's wedge-check accounting, and the batch's
//!   cross-check mismatch count);
//! * [`OpenOptions`] — validation depth, answer source, and an optional
//!   LRU of hot decoded rows ([`RowCache`]) with per-shard routing stats
//!   ([`RoutingReport`]) for skewed artifact loads;
//! * [`parse_queries`] — the `kron serve --queries file.txt` line format;
//! * [`Server`] — the long-lived TCP/HTTP front end (`kron serve
//!   --listen`): open and validate once, then answer `/query`, `/batch`,
//!   `/stats`, and `/healthz` over a hand-rolled std-only HTTP/1.1 layer
//!   ([`http`]) until a shutdown flag flips. Connections ride a
//!   `poll(2)` event loop (10K+ concurrent keep-alive peers on one
//!   node, with idle/slow-client timeouts); a bounded worker pool
//!   executes the requests. Pair it with
//!   [`AnswerSource::CrossCheckSampled`] (`--source cross-check:N`) for
//!   always-on 1-in-N conformance auditing at artifact-path cost;
//! * [`cluster`] — multi-node serving (`kron serve --shards a..b
//!   --peers …`): each node memory-maps only its claimed shard subset
//!   ([`kron_stream::ShardSet::open_subset`]) and fetches non-resident
//!   rows from a peer over the internal `GET /row` endpoint (through
//!   the [`RowCache`], which caches remote rows too), while serving the
//!   *unchanged* single-node wire protocol — including cross-checking
//!   answers assembled from peers' bytes. Overlapping claims are
//!   **replicas**: fetches rotate round-robin, fail over on transport
//!   errors, and eject unhealthy peers until a `/healthz` probe
//!   succeeds;
//! * **analytics jobs** — the server also runs [`kron_analyze`]
//!   whole-graph kernels asynchronously: `POST /jobs` submits a kernel
//!   spec and returns an id immediately, `GET /jobs/<id>` polls
//!   `running`/`done`/`failed` (with the full result document on
//!   completion), `DELETE /jobs/<id>` requests cooperative cancel. The
//!   job pool is bounded (`--jobs`, default 2) so a whole-graph PageRank
//!   never crowds out point-query latency; job counters ride along in
//!   `/stats`, and a job whose result contradicts the closed forms fails
//!   with the mismatch report attached;
//! * **traversal serving** — [`PathFinder`] answers `GET
//!   /path?from=&to=` (bidirectional-BFS shortest paths, `kron path` on
//!   the CLI) and `GET /khop?v=&k=` (k-hop neighborhoods with per-level
//!   counts) through the same row-fetch path as everything else, so a
//!   cluster node traverses the whole product while holding only its
//!   claimed shards — remote rows ride `GET /row?enc=vd` and the
//!   hot-row cache. Under a cross-check source, [`PathCertifier`]
//!   re-verifies every returned path edge-by-edge against the artifact
//!   and the closed-form oracle;
//! * [`Router`] — the stateless forwarding front end (`kron route`):
//!   discovers each node's claim via `GET /shards`, forwards `/query`
//!   and `/batch` by vertex range over each vertex's replicas with the
//!   same failover/ejection semantics as the nodes (answers
//!   byte-identical to a single node over the whole run directory),
//!   merges `/stats` across the cluster, and — with `--rediscover` —
//!   re-runs discovery periodically so nodes can join/leave live.
//!
//! Semantics match the in-memory oracles exactly: degrees exclude self
//! loops, triangles ignore loops (the paper's Rem. 3), and every answer
//! equals what `kron::KronProduct` or the `kron-triangles` kernels would
//! compute on the materialized graph — the integration suite asserts it.
//!
//! ## Quickstart
//!
//! ```
//! use kron::KronProduct;
//! use kron_graph::Graph;
//! use kron_serve::{run_batch, Query, ServeEngine};
//! use kron_stream::{stream_product, OutputFormat, StreamConfig};
//!
//! // Generate a small product as on-disk CSR shards…
//! let a = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
//! let c = KronProduct::new(a.clone(), a);
//! let dir = std::env::temp_dir().join(format!("kron_serve_doc_{}", std::process::id()));
//! let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
//! cfg.shards = 2;
//! stream_product(&c, &cfg).unwrap();
//!
//! // …then serve point queries off the mmap'd shards.
//! let engine = ServeEngine::open_verified(&dir).unwrap();
//! assert_eq!(engine.degree(4).unwrap(), c.degree(4));
//! assert_eq!(engine.vertex_triangles(4).unwrap(), 2); // Thm. 1: 2·t_A·t_B
//! assert_eq!(engine.edge_triangles(0, 4).unwrap(), Some(1));
//!
//! // Batched, concurrent, with a latency/throughput report.
//! let out = run_batch(&engine, &[Query::Degree(0), Query::VertexTriangles(4)]);
//! assert_eq!(out.answers.len(), 2);
//! assert_eq!(out.stats.errors, 0);
//!
//! // Or answer from the closed forms on the run's factor copies — no
//! // shard I/O — while cross-checking every artifact answer against them.
//! use kron_serve::{AnswerSource, OpenOptions};
//! let check = ServeEngine::open_with(&dir, &OpenOptions {
//!     source: AnswerSource::CrossCheck,
//!     ..OpenOptions::default()
//! }).unwrap();
//! assert_eq!(check.vertex_triangles(4).unwrap(), 2);
//! assert_eq!(check.mismatch_count(), 0); // artifact and oracle agree
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

// `deny`, not `forbid`: the poll(2) syscall shim in `poll` is the one
// place unsafe is allowed (it opts in per-module); every query path,
// parser, and state machine above it stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
pub mod cluster;
mod engine;
mod event_loop;
pub mod http;
mod jobs;
mod oracle;
mod path;
#[cfg(unix)]
mod poll;
pub mod router;
mod server;

pub use batch::{parse_queries, run_batch, Answer, BatchOutcome, Query, QueryStats};
pub use cache::{RoutingReport, RowCache};
pub use cluster::{parse_shard_range, PeerSpec};
pub use engine::{AnswerSource, Mismatch, OpenOptions, ServeEngine, ServeError};
pub use oracle::FactorOracle;
pub use path::{KhopAnswer, PathAnswer, PathCertifier, PathFinder, MAX_KHOP_VERTICES};
pub use router::{Router, RouterReport};
pub use server::{Server, ServerOptions, ServerReport};
