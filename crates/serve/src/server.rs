//! The long-lived serving process: a TCP/HTTP front end over
//! [`ServeEngine`].
//!
//! PR 2/3 made point queries cheap — but every `kron serve --queries`
//! invocation still paid process startup, shard validation, and (in
//! oracle modes) factor parsing. [`Server`] amortizes all of that across
//! the process lifetime: open once, `mmap` once, then answer over
//! loopback or the network until told to stop. Combined with
//! [`AnswerSource::CrossCheckSampled`] this is the ROADMAP's production
//! posture: artifact-cost serving with an always-on 1-in-N conformance
//! audit against the paper's closed forms.
//!
//! Design constraints shape the implementation:
//!
//! * **std only** (no crate registry): a hand-rolled HTTP/1.1 subset
//!   ([`crate::http`]) over `std::net::TcpListener`.
//! * **an event loop, not thread-per-connection**: one event thread
//!   `poll(2)`s every socket (via the [`crate::poll`] syscall shim) and
//!   a bounded worker pool (`--threads`) executes parsed requests, so
//!   10K+ mostly idle keep-alive connections cost pollfd entries, not
//!   threads. Idle/slow-client timeouts (`--idle-timeout`,
//!   `--io-timeout`) bound what a misbehaving peer can hold. The loop
//!   itself lives in [`crate::event_loop`].
//! * **graceful shutdown via an atomic flag**: [`Server::run`] borrows a
//!   caller-owned `AtomicBool` (the CLI sets it from SIGTERM/SIGINT, the
//!   tests from a scope thread). On shutdown the listener stops
//!   accepting, in-flight requests drain, and `run` returns a
//!   [`ServerReport`] the caller turns into an exit code (nonzero if any
//!   sampled query disagreed with the oracle).
//!
//! The wire protocol (endpoints, status codes, JSON shapes) is specified
//! normatively in `ARCHITECTURE.md` § "Serving over the network"; the
//! connection state machine and timeout semantics in its "Connection
//! lifecycle & timeouts" subsection.

use crate::batch::{self, Query, QueryStats};
use crate::engine::ServeEngine;
use crate::event_loop::{serve_connections, ConnCounters, LoopConfig};
use crate::http;
use kron_stream::json::Json;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-query latencies kept for the `/stats` rolling window.
const RECENT_LATENCIES: usize = 4096;

/// Hard cap on one `/batch` response body. The *request* cap lives in
/// [`http::MAX_BODY`]; answers amplify, so the response needs its own.
/// Shared with the router, whose merged responses must obey the same
/// bound the nodes do (the byte-identical contract).
pub(crate) const MAX_BATCH_RESPONSE: usize = 64 * 1024 * 1024;

/// Server tuning knobs.
#[derive(Clone, Debug, Default)]
pub struct ServerOptions {
    /// Request-execution worker threads. Connections are *not* tied to
    /// threads (the event loop holds them all); this sizes the pool that
    /// runs endpoint handlers, which may block on peer I/O — so more
    /// threads than cores is the right shape. `0` means 64.
    pub threads: usize,
    /// Maximum analytics jobs running concurrently (`POST /jobs` beyond
    /// the cap is rejected with 429, never queued); `0` means 2. Job
    /// workers are separate from the request worker pool, so a saturated
    /// job pool leaves point-query latency untouched.
    pub jobs: usize,
    /// Maximum concurrently open connections; `0` means 10240. At the
    /// cap the listener is not polled, leaving further peers in the
    /// kernel's accept backlog until a slot frees up.
    pub max_conns: usize,
    /// Keep-alive idle timeout — a connection with no request in
    /// progress for this long is closed. `None` means 60 s.
    pub idle_timeout: Option<Duration>,
    /// Slow-client I/O timeout — a hard deadline for completing a
    /// started request (armed at its first byte; a 1-byte-per-tick
    /// slow-loris drip cannot extend it) and a no-progress bound on
    /// response writes. `None` means 10 s.
    pub io_timeout: Option<Duration>,
}

/// Default worker pool size: request handling is blocking-I/O bound
/// (remote rows, router forwards), not CPU bound, so far more workers
/// than cores is the right shape.
const DEFAULT_WORKERS: usize = 64;

/// Default open-connection cap. High enough for the 10K-connection
/// bench target with headroom, low enough to stay under common fd
/// rlimits with room for shards, pipes, and the listener.
const DEFAULT_MAX_CONNS: usize = 10240;

/// Default keep-alive idle timeout.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Default slow-client read/write timeout.
const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(10);

impl ServerOptions {
    /// Worker-pool size with the default applied.
    pub(crate) fn workers(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            DEFAULT_WORKERS
        }
    }

    /// The resolved event-loop configuration.
    pub(crate) fn loop_config(&self) -> LoopConfig {
        LoopConfig {
            workers: self.workers(),
            max_conns: if self.max_conns > 0 {
                self.max_conns
            } else {
                DEFAULT_MAX_CONNS
            },
            idle_timeout: self.idle_timeout.unwrap_or(DEFAULT_IDLE_TIMEOUT),
            io_timeout: self.io_timeout.unwrap_or(DEFAULT_IO_TIMEOUT),
        }
    }

    pub(crate) fn max_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            crate::jobs::DEFAULT_MAX_JOBS
        }
    }
}

/// Totals of one server run, returned by [`Server::run`] after shutdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerReport {
    /// HTTP requests handled (all endpoints).
    pub requests: u64,
    /// Requests rejected as malformed (bad framing, bad query syntax).
    pub bad_requests: u64,
    /// Queries answered (each `/query`, plus each line of every
    /// `/batch`).
    pub queries: u64,
    /// Queries that returned an engine error (out-of-range, corrupt).
    pub query_errors: u64,
    /// Raw adjacency rows served to cluster peers over `GET /row`.
    pub rows_served: u64,
    /// Body bytes those `/row` responses carried, across both encodings.
    /// Compared against `rows_served * 8 * mean row length` this shows
    /// what the varint wire encoding (`enc=vd`) saved.
    pub row_wire_bytes: u64,
    /// Queries that ran both answer paths (see
    /// [`ServeEngine::sampled_checks`]).
    pub sampled_checks: u64,
    /// Artifact/oracle disagreements recorded over the whole run.
    pub mismatches: u64,
    /// Analytics jobs submitted over `POST /jobs` (admitted, not
    /// rejected).
    pub jobs_submitted: u64,
    /// Jobs that failed for any reason other than cancellation
    /// (validation mismatch, corrupt artifact, incomplete subset).
    pub jobs_failed: u64,
    /// Jobs ended by cooperative cancel (`DELETE /jobs/<id>` or server
    /// shutdown). Not counted in `jobs_failed`: a cancelled job says
    /// nothing about the artifact, so it never fails the run.
    pub jobs_cancelled: u64,
    /// Jobs whose finished result contradicted the closed forms — the
    /// job-level analogue of `mismatches`, and like it a nonzero-exit
    /// condition for the CLI.
    pub job_validation_failures: u64,
}

impl std::fmt::Display for ServerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} malformed), {} queries ({} errors), \
             {} rows served to peers ({} wire bytes), {} sampled cross-checks, \
             {} mismatches, \
             {} jobs ({} failed, {} cancelled, {} validation failures)",
            self.requests,
            self.bad_requests,
            self.queries,
            self.query_errors,
            self.rows_served,
            self.row_wire_bytes,
            self.sampled_checks,
            self.mismatches,
            self.jobs_submitted,
            self.jobs_failed,
            self.jobs_cancelled,
            self.job_validation_failures
        )
    }
}

/// The request/framing/connection counters every HTTP front end in this
/// crate keeps (the query server here, the forwarding router in
/// [`crate::router`]). `bad_requests` counts *framing and syntax*
/// rejections only; connections lost to resets or timeouts are
/// transport events, accounted in `conns` and never here.
pub(crate) struct LoopCounters {
    pub(crate) requests: AtomicU64,
    pub(crate) bad_requests: AtomicU64,
    pub(crate) conns: ConnCounters,
}

impl LoopCounters {
    pub(crate) fn new() -> LoopCounters {
        LoopCounters {
            requests: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            conns: ConnCounters::new(),
        }
    }
}

/// Counters and the latency window shared by all workers.
struct ServerState<'e> {
    engine: &'e ServeEngine,
    started: Instant,
    threads: usize,
    http: LoopCounters,
    queries: AtomicU64,
    query_errors: AtomicU64,
    rows_served: AtomicU64,
    row_wire_bytes: AtomicU64,
    wedge_checks: AtomicU64,
    /// Rolling window of the most recent per-query latencies; `/stats`
    /// derives its percentile block from this.
    recent: Mutex<Vec<Duration>>,
    /// Analytics-job registry behind `POST /jobs` (see [`crate::jobs`]).
    jobs: crate::jobs::JobRegistry,
}

impl ServerState<'_> {
    /// Record one answered query.
    fn record_query(&self, lat: Duration, is_err: bool, checks: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.query_errors
            .fetch_add(u64::from(is_err), Ordering::Relaxed);
        self.wedge_checks.fetch_add(checks, Ordering::Relaxed);
        let mut recent = self.recent.lock().unwrap();
        if recent.len() >= RECENT_LATENCIES {
            // overwrite round-robin: cheap, and percentiles of a rolling
            // window do not care about intra-window order
            let i = (self.queries.load(Ordering::Relaxed) as usize) % RECENT_LATENCIES;
            recent[i] = lat;
        } else {
            recent.push(lat);
        }
    }

    fn report(&self) -> ServerReport {
        ServerReport {
            requests: self.http.requests.load(Ordering::Relaxed),
            bad_requests: self.http.bad_requests.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            query_errors: self.query_errors.load(Ordering::Relaxed),
            rows_served: self.rows_served.load(Ordering::Relaxed),
            row_wire_bytes: self.row_wire_bytes.load(Ordering::Relaxed),
            sampled_checks: self.engine.sampled_checks(),
            mismatches: self.engine.mismatch_count(),
            jobs_submitted: self.jobs.submitted(),
            jobs_failed: self.jobs.jobs_failed(),
            jobs_cancelled: self.jobs.jobs_cancelled(),
            job_validation_failures: self.jobs.validation_failures(),
        }
    }

    /// The `/stats` document.
    fn stats_json(&self) -> Json {
        let recent = self.recent.lock().unwrap().clone();
        // Latencies are the rolling window; the scalar fields (errors,
        // mismatches, wedge checks, wall = uptime) are run totals, so the
        // row never contradicts the top-level counters beside it.
        let window = QueryStats::from_samples(
            self.engine.source(),
            recent,
            self.query_errors.load(Ordering::Relaxed) as usize,
            self.engine.mismatch_count(),
            self.threads,
            self.started.elapsed(),
            self.wedge_checks.load(Ordering::Relaxed),
        );
        let mut fields = vec![
            ("source", Json::str(&self.engine.source().to_string())),
            (
                "uptime_secs",
                Json::num(self.started.elapsed().as_secs_f64()),
            ),
            ("threads", Json::num(self.threads)),
            (
                "requests",
                Json::num(self.http.requests.load(Ordering::Relaxed)),
            ),
            (
                "bad_requests",
                Json::num(self.http.bad_requests.load(Ordering::Relaxed)),
            ),
            ("queries", Json::num(self.queries.load(Ordering::Relaxed))),
            (
                "errors",
                Json::num(self.query_errors.load(Ordering::Relaxed)),
            ),
            (
                "rows_served",
                Json::num(self.rows_served.load(Ordering::Relaxed)),
            ),
            (
                "row_wire_bytes",
                Json::num(self.row_wire_bytes.load(Ordering::Relaxed)),
            ),
            ("sampled_checks", Json::num(self.engine.sampled_checks())),
            ("mismatch_count", Json::num(self.engine.mismatch_count())),
            ("connections", self.http.conns.to_json()),
            ("recent", window.to_json()),
            ("routing", self.engine.routing().to_json()),
        ];
        // Cluster nodes add per-replica health under `peers`; single-node
        // engines omit the key (ARCHITECTURE.md § "Cluster serving").
        if let Some(remote) = self.engine.remote() {
            fields.push(("peers", remote.peer_stats()));
        }
        fields.push(("jobs", self.jobs.stats_json()));
        fields.push((
            "mismatches",
            Json::Arr(
                self.engine
                    .mismatches()
                    .iter()
                    .map(|m| m.to_json())
                    .collect(),
            ),
        ));
        Json::obj(fields)
    }
}

/// A bound, not-yet-running server.
///
/// Binding and running are split so the caller can learn the actual
/// address (`--listen 127.0.0.1:0` binds an ephemeral port) before the
/// blocking [`Server::run`] call.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Bind the listening socket. The listener is placed in
    /// non-blocking mode so the accept loop can interleave shutdown
    /// checks.
    ///
    /// # Errors
    ///
    /// Fails when the address does not parse, is in use, or cannot be
    /// bound.
    pub fn bind(addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { listener })
    }

    /// The bound address (with the real port for `:0` binds).
    ///
    /// # Errors
    ///
    /// Fails when the socket is gone (never, in practice, on a freshly
    /// bound listener).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound listener, for other front ends in this crate (the
    /// router) reusing the same accept loop.
    pub(crate) fn listener(&self) -> &TcpListener {
        &self.listener
    }

    /// Serve until `shutdown` becomes `true`, then drain and return the
    /// run's totals.
    ///
    /// Connections live on the event loop; parsed requests are executed
    /// by a pool of `opts.threads` workers. On shutdown: no new
    /// connections are accepted, idle keep-alive connections are closed
    /// at the next poll tick (≤ ~100 ms), in-flight requests are
    /// answered and flushed, then `run` returns.
    ///
    /// # Errors
    ///
    /// The event loop itself never returns an I/O error (transient
    /// accept failures retry; a persistently dead listener ends the run
    /// with whatever totals accumulated); the `io::Result` is kept for
    /// interface stability.
    pub fn run(
        &self,
        engine: &ServeEngine,
        opts: &ServerOptions,
        shutdown: &AtomicBool,
    ) -> io::Result<ServerReport> {
        let state = ServerState {
            engine,
            started: Instant::now(),
            threads: opts.workers(),
            http: LoopCounters::new(),
            queries: AtomicU64::new(0),
            query_errors: AtomicU64::new(0),
            rows_served: AtomicU64::new(0),
            row_wire_bytes: AtomicU64::new(0),
            wedge_checks: AtomicU64::new(0),
            recent: Mutex::new(Vec::new()),
            jobs: crate::jobs::JobRegistry::new(opts.max_jobs()),
        };
        // Job workers are scoped threads spawned by `POST /jobs`
        // handlers; the scope exit is the shutdown barrier for them.
        // Once the accept loop has drained, every still-running job is
        // cancelled cooperatively so the join never waits on a
        // long-running kernel — this is also what makes SIGTERM during
        // a job exit cleanly.
        std::thread::scope(|scope| {
            serve_connections(
                &self.listener,
                &opts.loop_config(),
                "kron serve",
                shutdown,
                &state.http,
                &|req| route(&state, scope, req),
            );
            state.jobs.cancel_all();
        });
        Ok(state.report())
    }
}

/// Status for an engine error surfaced on `GET /query`: a remote-row
/// fetch failure is the node's upstream failing (502), everything else
/// is the query being unanswerable for this run (422).
fn error_status(e: &crate::engine::ServeError) -> u16 {
    match e {
        crate::engine::ServeError::Remote(_) => 502,
        _ => 422,
    }
}

/// Dispatch one request to its endpoint.
///
/// `scope` is the job-worker scope owned by [`Server::run`]: `POST
/// /jobs` spawns its kernel worker there, so the run's scope exit (after
/// `cancel_all`) is the single join point for both connection handlers
/// and job workers.
fn route<'s>(
    state: &'s ServerState<'s>,
    scope: &'s std::thread::Scope<'s, '_>,
    req: &http::Request,
) -> (u16, &'static str, Vec<u8>) {
    const TEXT: &str = "text/plain; charset=utf-8";
    const JSON: &str = "application/json";
    const OCTETS: &str = "application/octet-stream";
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, TEXT, b"ok\n".to_vec()),
        ("GET", "/query") => {
            let Some(line) = req.query_param("q") else {
                return (400, TEXT, b"error: missing query parameter q\n".to_vec());
            };
            match Query::parse(line) {
                Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
                Ok(query) => {
                    let t0 = Instant::now();
                    let (res, checks) = batch::answer(state.engine, query);
                    state.record_query(t0.elapsed(), res.is_err(), checks);
                    match res {
                        Ok(a) => (200, TEXT, format!("{a}\n").into_bytes()),
                        Err(e) => (error_status(&e), TEXT, format!("error: {e}\n").into_bytes()),
                    }
                }
            }
        }
        ("GET", "/path") => match crate::path::parse_path_params(req) {
            Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
            Ok((from, to, max_depth)) => {
                let t0 = Instant::now();
                let res = crate::path::PathFinder::new(state.engine)
                    .shortest_path(from, to, max_depth);
                state.record_query(t0.elapsed(), res.is_err(), 0);
                match res {
                    Ok(a) => (200, JSON, format!("{}\n", a.to_json()).into_bytes()),
                    Err(e) => (error_status(&e), TEXT, format!("error: {e}\n").into_bytes()),
                }
            }
        },
        ("GET", "/khop") => match crate::path::parse_khop_params(req) {
            Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
            Ok((v, k)) => {
                let t0 = Instant::now();
                let res = crate::path::PathFinder::new(state.engine).khop(v, k);
                state.record_query(t0.elapsed(), res.is_err(), 0);
                match res {
                    Ok(a) => (200, JSON, format!("{}\n", a.to_json()).into_bytes()),
                    Err(e) => (error_status(&e), TEXT, format!("error: {e}\n").into_bytes()),
                }
            }
        },
        ("GET", "/row") => {
            // The cluster-internal row fetch: raw little-endian u64 words
            // of one resident adjacency row, straight off the mapping.
            // Not a query — it bumps `rows_served`, never the engine's
            // query counter (the *querying* node accounts the query).
            let set = state.engine.shard_set();
            let (Some(shard), Some(v)) = (req.query_param("shard"), req.query_param("v")) else {
                return (
                    400,
                    TEXT,
                    b"error: /row needs shard=S and v=V parameters\n".to_vec(),
                );
            };
            let Ok(shard) = shard.parse::<usize>() else {
                return (400, TEXT, b"error: shard must be a shard index\n".to_vec());
            };
            let Ok(v) = v.parse::<u64>() else {
                return (400, TEXT, b"error: v must be a vertex id\n".to_vec());
            };
            let Some(range) = set.shard_vertices(shard) else {
                return (
                    404,
                    TEXT,
                    format!(
                        "error: no shard {shard} in this run ({} shards)\n",
                        set.num_shards()
                    )
                    .into_bytes(),
                );
            };
            let Some(open) = set.local(shard) else {
                let subset = set.subset();
                return (
                    404,
                    TEXT,
                    format!(
                        "error: shard {shard} is not resident on this node \
                         (serving {}..{})\n",
                        subset.start, subset.end
                    )
                    .into_bytes(),
                );
            };
            if !range.contains(&v) {
                return (
                    422,
                    TEXT,
                    format!(
                        "error: vertex {v} outside shard {shard}'s vertex range \
                         ({}..{})\n",
                        range.start, range.end
                    )
                    .into_bytes(),
                );
            }
            // in range of a validated resident shard ⇒ the row exists
            let (ctype, body): (&'static str, Vec<u8>) = if req.query_param("enc") == Some("vd") {
                // Varint delta body. A csr2 shard hands its encoded bytes
                // out zero-copy; a v1 shard encodes on the fly, so the
                // wire saving holds regardless of the on-disk format. Any
                // other `enc` value (or none) falls through to raw words,
                // which keeps old fetchers working unchanged.
                let body = match open.reader.row_bytes_vd(v) {
                    Some(bytes) => bytes.to_vec(),
                    None => {
                        let Some(row) = open.reader.row(v) else {
                            return (500, TEXT, b"error: resident row unavailable\n".to_vec());
                        };
                        let mut out = Vec::new();
                        kron_stream::encode_row_vd(&row, &mut out);
                        out
                    }
                };
                (http::ROW_VD_CONTENT_TYPE, body)
            } else {
                let Some(row) = open.reader.row(v) else {
                    return (500, TEXT, b"error: resident row unavailable\n".to_vec());
                };
                let mut body = Vec::with_capacity(row.len() * 8);
                for &w in &*row {
                    body.extend_from_slice(&w.to_le_bytes());
                }
                (OCTETS, body)
            };
            state.rows_served.fetch_add(1, Ordering::Relaxed);
            state
                .row_wire_bytes
                .fetch_add(body.len() as u64, Ordering::Relaxed);
            (200, ctype, body)
        }
        ("GET", "/shards") => {
            // The node's slice of the ownership map — what a router (or a
            // curious operator) needs to route by vertex range.
            let set = state.engine.shard_set();
            let subset = set.subset();
            let span = set.subset_vertices();
            let doc = Json::obj(vec![
                ("shards", Json::num(set.num_shards())),
                (
                    "subset",
                    Json::Arr(vec![Json::num(subset.start), Json::num(subset.end)]),
                ),
                ("vertex_lo", Json::num(span.start)),
                ("vertex_hi", Json::num(span.end)),
                ("num_vertices", Json::num(set.num_vertices())),
            ]);
            (200, JSON, format!("{doc}\n").into_bytes())
        }
        ("POST", "/batch") => {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return (400, TEXT, b"error: body is not UTF-8\n".to_vec());
            };
            match batch::parse_queries(text) {
                Err(e) => (400, TEXT, format!("error: {e}\n").into_bytes()),
                Ok(queries) => {
                    // sequential on purpose: answers come back in input
                    // order by construction, identical to `run_batch`
                    // output, and concurrency comes from the connection
                    // pool rather than intra-batch fan-out
                    let mut lines = String::new();
                    for &q in &queries {
                        let t0 = Instant::now();
                        let (res, checks) = batch::answer(state.engine, q);
                        state.record_query(t0.elapsed(), res.is_err(), checks);
                        match res {
                            Ok(a) => lines.push_str(&format!("{q} = {a}\n")),
                            Err(e) => lines.push_str(&format!("{q} = error: {e}\n")),
                        }
                        // The request body is capped, but answers amplify
                        // (one `neighbors <hub>` line can render thousands
                        // of ids); keep the response bounded too instead
                        // of buffering gigabytes for one request.
                        if lines.len() > MAX_BATCH_RESPONSE {
                            return (
                                413,
                                TEXT,
                                format!(
                                    "error: batch response exceeds {MAX_BATCH_RESPONSE} \
                                     bytes — split the batch\n"
                                )
                                .into_bytes(),
                            );
                        }
                    }
                    (200, TEXT, lines.into_bytes())
                }
            }
        }
        ("GET", "/stats") => (200, JSON, format!("{}\n", state.stats_json()).into_bytes()),
        ("GET", "/jobs") => {
            // The listing: every job ever submitted, in submission order,
            // as {id, kernel, state} summaries. Poll `/jobs/<id>` for
            // result documents.
            (
                200,
                JSON,
                format!("{}\n", state.jobs.list_json()).into_bytes(),
            )
        }
        ("POST", "/jobs") => {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return (400, TEXT, b"error: body is not UTF-8\n".to_vec());
            };
            let spec =
                match Json::parse(text).and_then(|doc| kron_analyze::KernelSpec::from_json(&doc)) {
                    Err(e) => return (400, TEXT, format!("error: {e}\n").into_bytes()),
                    Ok(spec) => spec,
                };
            let kernel = spec.kernel.name();
            match state.jobs.submit(kernel, spec) {
                Err((running, cap)) => (
                    429,
                    JSON,
                    format!(
                        "{{\"error\":\"job pool is full\",\"running\":{running},\
                         \"cap\":{cap}}}\n"
                    )
                    .into_bytes(),
                ),
                Ok(entry) => {
                    let id = entry.id;
                    let engine = state.engine;
                    let registry = &state.jobs;
                    scope.spawn(move || crate::jobs::execute(engine, registry, &entry));
                    (
                        202,
                        JSON,
                        format!("{{\"id\":{id},\"kernel\":\"{kernel}\",\"state\":\"running\"}}\n")
                            .into_bytes(),
                    )
                }
            }
        }
        // Precedence on `/jobs/<id>`: the id must parse (400), the job
        // must exist (404), then the method must fit (405).
        (method, path) if path.starts_with("/jobs/") => {
            let Ok(id) = path["/jobs/".len()..].parse::<u64>() else {
                return (
                    400,
                    TEXT,
                    b"error: job id must be a decimal number\n".to_vec(),
                );
            };
            let Some(job) = state.jobs.lookup(id) else {
                return (404, TEXT, format!("error: no job {id}\n").into_bytes());
            };
            match method {
                "GET" => (200, JSON, format!("{}\n", job.to_json()).into_bytes()),
                "DELETE" => {
                    // Idempotent: cancelling a finished (or already
                    // cancelled) job re-raises a flag nobody reads.
                    job.stop.store(true, Ordering::SeqCst);
                    (
                        202,
                        JSON,
                        format!("{{\"id\":{id},\"cancel_requested\":true}}\n").into_bytes(),
                    )
                }
                _ => (
                    405,
                    TEXT,
                    b"error: method not allowed for this endpoint\n".to_vec(),
                ),
            }
        }
        (
            _,
            "/healthz" | "/query" | "/batch" | "/path" | "/khop" | "/stats" | "/row" | "/shards"
            | "/jobs",
        ) => (
            405,
            TEXT,
            b"error: method not allowed for this endpoint\n".to_vec(),
        ),
        // 501 with the endpoint inventory, mirroring the router's
        // catch-all, so a client can tell a typo from a wrong tier.
        _ => (
            501,
            JSON,
            b"{\"error\":\"not implemented by this node\",\"supported\":[\"/healthz\",\"/query\",\"/batch\",\"/path\",\"/khop\",\"/stats\",\"/row\",\"/shards\",\"/jobs\"]}\n"
                .to_vec(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AnswerSource, OpenOptions};
    use crate::http::Client;
    use kron::KronProduct;
    use kron_graph::Graph;
    use kron_stream::{stream_product, OutputFormat, StreamConfig};

    fn run_dir(name: &str) -> (std::path::PathBuf, KronProduct) {
        let dir =
            std::env::temp_dir().join(format!("kron_server_unit_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = KronProduct::new(a.clone(), a);
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
        cfg.shards = 2;
        stream_product(&c, &cfg).unwrap();
        (dir, c)
    }

    #[test]
    fn endpoints_answer_and_shutdown_is_graceful() {
        let (dir, c) = run_dir("endpoints");
        let engine = ServeEngine::open_verified(&dir).unwrap();
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = AtomicBool::new(false);
        let report = std::thread::scope(|s| {
            let run = s.spawn(|| server.run(&engine, &ServerOptions::default(), &stop));
            let mut client = Client::connect(addr).unwrap();
            let (status, body) = client.get("/healthz").unwrap();
            assert_eq!((status, body.as_str()), (200, "ok\n"));

            let (status, body) = client.get("/query?q=degree%205").unwrap();
            assert_eq!(status, 200);
            assert_eq!(body.trim().parse::<u64>().unwrap(), c.degree(5));

            // parse error → 400; engine error (out of range) → 422
            let (status, body) = client.get("/query?q=frobnicate%201").unwrap();
            assert_eq!(status, 400, "{body}");
            let oob = format!("/query?q=degree%20{}", c.num_vertices());
            let (status, body) = client.get(&oob).unwrap();
            assert_eq!(status, 422, "{body}");
            assert!(body.contains("outside all shard row ranges"), "{body}");

            let (status, body) = client
                .post(
                    "/batch",
                    b"degree 0\ntri_vertex 5\n# comment\nhas_edge 0 5\n",
                )
                .unwrap();
            assert_eq!(status, 200);
            let lines: Vec<&str> = body.lines().collect();
            assert_eq!(lines.len(), 3);
            assert_eq!(lines[0], format!("degree 0 = {}", c.degree(0)));
            assert_eq!(
                lines[1],
                format!("tri_vertex 5 = {}", c.vertex_triangles(5))
            );

            let (status, body) = client.get("/stats").unwrap();
            assert_eq!(status, 200);
            let doc = Json::parse(&body).unwrap();
            // 1 good /query + 1 engine-err /query + 3 batch lines = 5
            // queries; the parse-failed /query (400) never reached the
            // engine, so it counts as a bad request, not a query error
            assert_eq!(doc.req("queries").unwrap().as_u64(), Some(5));
            assert_eq!(doc.req("errors").unwrap().as_u64(), Some(1));
            assert_eq!(doc.req("bad_requests").unwrap().as_u64(), Some(1));
            assert_eq!(doc.req("mismatch_count").unwrap().as_u64(), Some(0));
            assert!(doc.req("recent").unwrap().get("p99").is_none()); // QueryStats names it p99_us
            assert!(doc.req("recent").unwrap().get("p99_us").is_some());
            assert!(doc.req("routing").unwrap().get("shard_fetches").is_some());

            let (status, body) = client.get("/nope").unwrap();
            assert_eq!(status, 501, "unknown paths get the endpoint inventory");
            assert!(body.contains("\"/path\"") && body.contains("\"/khop\""));
            let (status, _) = client.post("/healthz", b"").unwrap();
            assert_eq!(status, 405);
            let (status, _) = client.post("/path", b"").unwrap();
            assert_eq!(status, 405);

            stop.store(true, Ordering::SeqCst);
            run.join().unwrap().unwrap()
        });
        assert_eq!(report.queries, 5);
        assert_eq!(report.query_errors, 1);
        assert_eq!(report.bad_requests, 1);
        assert_eq!(report.mismatches, 0);
        assert!(report.requests >= 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_framing_gets_400_and_close() {
        let (dir, _c) = run_dir("framing");
        let engine = ServeEngine::open_verified(&dir).unwrap();
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let run = s.spawn(|| {
                server.run(
                    &engine,
                    &ServerOptions {
                        threads: 2,
                        ..Default::default()
                    },
                    &stop,
                )
            });
            use std::io::{Read, Write};
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            raw.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
            let mut resp = String::new();
            raw.read_to_string(&mut resp).unwrap(); // server closes after 400
            assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
            stop.store(true, Ordering::SeqCst);
            let report = run.join().unwrap().unwrap();
            assert_eq!(report.bad_requests, 1);
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn row_and_shards_endpoints_speak_the_cluster_protocol() {
        let (dir, c) = run_dir("cluster_endpoints");
        let engine = ServeEngine::open_with(
            &dir,
            &OpenOptions {
                shard_subset: Some(0..1),
                peers: vec![crate::PeerSpec::parse("1..2=127.0.0.1:1").unwrap()],
                ..OpenOptions::default()
            },
        )
        .unwrap();
        let set = engine.shard_set();
        let span = set.subset_vertices();
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = AtomicBool::new(false);
        let report = std::thread::scope(|s| {
            let run = s.spawn(|| server.run(&engine, &ServerOptions::default(), &stop));
            let mut client = Client::connect(addr).unwrap();

            // /shards: the node's slice of the ownership map
            let (status, body) = client.get("/shards").unwrap();
            assert_eq!(status, 200);
            let doc = Json::parse(&body).unwrap();
            assert_eq!(doc.req("shards").unwrap().as_u64(), Some(2));
            assert_eq!(
                doc.req("subset").unwrap().as_arr().unwrap()[1].as_u64(),
                Some(1)
            );
            assert_eq!(doc.req("vertex_lo").unwrap().as_u64(), Some(span.start));
            assert_eq!(doc.req("vertex_hi").unwrap().as_u64(), Some(span.end));
            assert_eq!(
                doc.req("num_vertices").unwrap().as_u64(),
                Some(c.num_vertices())
            );

            // /row: a resident row comes back as raw little-endian words
            let v = span.start;
            let (status, bytes) = client.get_bytes(&format!("/row?shard=0&v={v}")).unwrap();
            assert_eq!(status, 200);
            let row: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|w| u64::from_le_bytes(w.try_into().unwrap()))
                .collect();
            assert_eq!(row, c.neighbors(v));

            // /row with enc=vd: same row, varint delta body, declared by
            // Content-Type, never larger than the raw words
            let (status, ctype, vd) = client
                .get_bytes_typed(&format!("/row?shard=0&v={v}&enc=vd"))
                .unwrap();
            assert_eq!(status, 200);
            assert_eq!(ctype, http::ROW_VD_CONTENT_TYPE);
            let mut decoded = Vec::new();
            assert!(kron_stream::decode_row_vd(&vd, &mut decoded));
            assert_eq!(decoded, c.neighbors(v));
            assert!(vd.len() <= bytes.len(), "{} > {}", vd.len(), bytes.len());

            // an unknown encoding falls back to raw words
            let (status, ctype, raw) = client
                .get_bytes_typed(&format!("/row?shard=0&v={v}&enc=zstd"))
                .unwrap();
            assert_eq!((status, ctype.as_str()), (200, "application/octet-stream"));
            assert_eq!(raw, bytes);

            // non-resident shard → 404; out-of-shard vertex → 422;
            // malformed → 400; unknown shard → 404
            let (status, body) = client.get(&format!("/row?shard=1&v={}", span.end)).unwrap();
            assert_eq!(status, 404, "{body}");
            assert!(body.contains("not resident"), "{body}");
            let (status, body) = client.get(&format!("/row?shard=0&v={}", span.end)).unwrap();
            assert_eq!(status, 422, "{body}");
            let (status, _) = client.get("/row?shard=0").unwrap();
            assert_eq!(status, 400);
            let (status, body) = client.get("/row?shard=9&v=0").unwrap();
            assert_eq!(status, 404, "{body}");
            assert!(body.contains("no shard 9"), "{body}");
            let (status, _) = client.post("/row", b"").unwrap();
            assert_eq!(status, 405);

            stop.store(true, Ordering::SeqCst);
            run.join().unwrap().unwrap()
        });
        assert_eq!(report.rows_served, 3, "only the 200 fetches count");
        assert!(
            report.row_wire_bytes >= 3 * c.neighbors(span.start).len() as u64,
            "wire bytes cover three bodies: {}",
            report.row_wire_bytes
        );
        assert_eq!(report.queries, 0, "/row is not a query");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampled_source_reports_through_stats_endpoint() {
        let (dir, c) = run_dir("sampled_stats");
        let engine = ServeEngine::open_with(
            &dir,
            &OpenOptions {
                source: AnswerSource::CrossCheckSampled(4),
                ..OpenOptions::default()
            },
        )
        .unwrap();
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let run = s.spawn(|| {
                server.run(
                    &engine,
                    &ServerOptions {
                        threads: 1,
                        ..Default::default()
                    },
                    &stop,
                )
            });
            let mut client = Client::connect(addr).unwrap();
            let mut batch = String::new();
            for v in 0..c.num_vertices() {
                batch.push_str(&format!("degree {v}\n"));
            }
            let (status, _) = client.post("/batch", batch.as_bytes()).unwrap();
            assert_eq!(status, 200);
            let (_, body) = client.get("/stats").unwrap();
            let doc = Json::parse(&body).unwrap();
            assert_eq!(doc.req("source").unwrap().as_str(), Some("cross-check:4"));
            assert_eq!(
                doc.req("sampled_checks").unwrap().as_u64(),
                Some(c.num_vertices().div_ceil(4))
            );
            assert_eq!(doc.req("mismatch_count").unwrap().as_u64(), Some(0));
            stop.store(true, Ordering::SeqCst);
            run.join().unwrap().unwrap();
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
