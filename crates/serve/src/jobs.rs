//! Async analytics jobs: the registry behind `POST /jobs`.
//!
//! A job is one [`kron_analyze`] whole-graph kernel running on its own
//! thread against the server's already-open engine. The registry pins
//! the lifecycle the wire protocol exposes:
//!
//! * **Bounded pool** — at most `max_concurrent` jobs run at once;
//!   a submission beyond the cap is **rejected with 429** (not queued:
//!   a queue would make "running" unobservable and let a burst of
//!   submissions park unbounded work behind the cap). Point queries are
//!   served by the connection pool, so a full job pool never delays
//!   them — that isolation is the reason the pool exists.
//! * **States** — `running → done | failed`. There is no separate
//!   cancelled state: a cancelled job fails with `error: "cancelled"`,
//!   so pollers only ever distinguish three states.
//! * **Cooperative cancel** — `DELETE /jobs/<id>` (and server shutdown)
//!   flip the job's stop flag; the kernel notices at its next row batch
//!   and the worker records the failure. Nothing is ever torn down
//!   mid-write — kernels are read-only over the mapping.
//! * **Validation surfacing** — a kernel that finishes but contradicts
//!   the closed forms ([`AnalyzeError::Validation`]) fails the job *and*
//!   keeps the full result document, so `GET /jobs/<id>` shows exactly
//!   which total mismatched; the registry counts it separately for
//!   `/stats` and the server's exit-code contract.
//!
//! Job ids are sequential from 1 per server process; entries are kept
//! for the life of the process (an id never dangles while an operator
//! might still poll it).

use crate::engine::ServeEngine;
use kron_analyze::{run_kernel, AnalyzeError, KernelSpec};
use kron_stream::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Concurrent-jobs cap when `--jobs` is not given.
pub(crate) const DEFAULT_MAX_JOBS: usize = 2;

/// Lifecycle of one job, as exposed on the wire.
pub(crate) enum JobState {
    Running,
    Done(Json),
    Failed {
        error: String,
        /// Present when the kernel completed but failed validation: the
        /// full result document, mismatch fields included.
        result: Option<Json>,
    },
}

/// One submitted job.
pub(crate) struct JobEntry {
    pub(crate) id: u64,
    pub(crate) kernel: &'static str,
    pub(crate) spec: KernelSpec,
    pub(crate) stop: AtomicBool,
    pub(crate) state: Mutex<JobState>,
}

impl JobEntry {
    /// One line of the `GET /jobs` listing: id, kernel, and state only.
    /// Result and error documents stay behind `GET /jobs/<id>` — a
    /// listing that inlined every finished PageRank would grow without
    /// bound.
    pub(crate) fn summary_json(&self) -> Json {
        let state = match &*self.state.lock().unwrap() {
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed { .. } => "failed",
        };
        Json::obj(vec![
            ("id", Json::num(self.id)),
            ("kernel", Json::str(self.kernel)),
            ("state", Json::str(state)),
        ])
    }

    /// The poll document — the `GET /jobs/<id>` body without its
    /// trailing newline.
    pub(crate) fn to_json(&self) -> Json {
        let state = self.state.lock().unwrap();
        let mut pairs = vec![
            ("id", Json::num(self.id)),
            ("kernel", Json::str(self.kernel)),
        ];
        match &*state {
            JobState::Running => pairs.push(("state", Json::str("running"))),
            JobState::Done(doc) => {
                pairs.push(("state", Json::str("done")));
                pairs.push(("result", doc.clone()));
            }
            JobState::Failed { error, result } => {
                pairs.push(("state", Json::str("failed")));
                pairs.push(("error", Json::str(error)));
                if let Some(doc) = result {
                    pairs.push(("result", doc.clone()));
                }
            }
        }
        Json::obj(pairs)
    }
}

/// All jobs of one server run, plus the `/stats` counters.
pub(crate) struct JobRegistry {
    max_concurrent: usize,
    /// Every job ever submitted; `jobs[i]` has id `i + 1`.
    jobs: Mutex<Vec<Arc<JobEntry>>>,
    running: AtomicUsize,
    done: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    validation_failures: AtomicU64,
}

impl JobRegistry {
    pub(crate) fn new(max_concurrent: usize) -> JobRegistry {
        JobRegistry {
            max_concurrent,
            jobs: Mutex::new(Vec::new()),
            running: AtomicUsize::new(0),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            validation_failures: AtomicU64::new(0),
        }
    }

    /// Admit a job or reject it at the pool cap. Admission reserves the
    /// running slot under the registry lock, so a burst of concurrent
    /// submissions can never overshoot the cap.
    pub(crate) fn submit(
        &self,
        kernel: &'static str,
        spec: KernelSpec,
    ) -> Result<Arc<JobEntry>, (usize, usize)> {
        let mut jobs = self.jobs.lock().unwrap();
        let running = self.running.load(Ordering::SeqCst);
        if running >= self.max_concurrent {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err((running, self.max_concurrent));
        }
        self.running.fetch_add(1, Ordering::SeqCst);
        let entry = Arc::new(JobEntry {
            id: jobs.len() as u64 + 1,
            kernel,
            spec,
            stop: AtomicBool::new(false),
            state: Mutex::new(JobState::Running),
        });
        jobs.push(Arc::clone(&entry));
        Ok(entry)
    }

    /// The job with `id`, if it was ever submitted.
    pub(crate) fn lookup(&self, id: u64) -> Option<Arc<JobEntry>> {
        let jobs = self.jobs.lock().unwrap();
        id.checked_sub(1)
            .and_then(|i| usize::try_from(i).ok())
            .and_then(|i| jobs.get(i))
            .map(Arc::clone)
    }

    /// Total jobs ever submitted (= highest id).
    pub(crate) fn submitted(&self) -> u64 {
        self.jobs.lock().unwrap().len() as u64
    }

    /// Raise every job's stop flag — the shutdown path: the accept loop
    /// has stopped, and the scope join behind it must not wait on a
    /// PageRank that still has 900 iterations to go.
    pub(crate) fn cancel_all(&self) {
        for job in self.jobs.lock().unwrap().iter() {
            job.stop.store(true, Ordering::SeqCst);
        }
    }

    pub(crate) fn jobs_failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    pub(crate) fn jobs_cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    pub(crate) fn validation_failures(&self) -> u64 {
        self.validation_failures.load(Ordering::Relaxed)
    }

    /// The `GET /jobs` body (without its trailing newline): every job
    /// ever submitted, in submission order (= ascending id).
    pub(crate) fn list_json(&self) -> Json {
        let jobs = self.jobs.lock().unwrap();
        Json::obj(vec![(
            "jobs",
            Json::Arr(jobs.iter().map(|j| j.summary_json()).collect()),
        )])
    }

    /// The `"jobs"` object merged into `/stats`.
    pub(crate) fn stats_json(&self) -> Json {
        Json::obj(vec![
            ("cap", Json::num(self.max_concurrent)),
            ("submitted", Json::num(self.submitted())),
            ("running", Json::num(self.running.load(Ordering::SeqCst))),
            ("done", Json::num(self.done.load(Ordering::Relaxed))),
            ("failed", Json::num(self.failed.load(Ordering::Relaxed))),
            (
                "cancelled",
                Json::num(self.cancelled.load(Ordering::Relaxed)),
            ),
            ("rejected", Json::num(self.rejected.load(Ordering::Relaxed))),
            (
                "validation_failures",
                Json::num(self.validation_failures.load(Ordering::Relaxed)),
            ),
        ])
    }
}

/// Run one admitted job to completion on the current thread (the worker
/// body `POST /jobs` spawns) and record its outcome.
pub(crate) fn execute(engine: &ServeEngine, registry: &JobRegistry, entry: &JobEntry) {
    // Leave a core for the connection pool: kernel results are
    // thread-count-independent by contract, so shaving one worker only
    // costs job wall-clock while keeping point-query tail latency flat
    // (bench_analyze measures exactly this). An operator's explicit
    // RAYON_NUM_THREADS is honored untouched.
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        std::env::set_var(
            "RAYON_NUM_THREADS",
            cores.saturating_sub(1).max(1).to_string(),
        );
    }
    let outcome = run_kernel(engine.shard_set(), &entry.spec, &entry.stop);
    let next = match outcome {
        Ok(doc) => {
            registry.done.fetch_add(1, Ordering::Relaxed);
            JobState::Done(doc)
        }
        Err(AnalyzeError::Cancelled) => {
            registry.cancelled.fetch_add(1, Ordering::Relaxed);
            JobState::Failed {
                error: "cancelled".into(),
                result: None,
            }
        }
        Err(AnalyzeError::Validation(doc)) => {
            registry.failed.fetch_add(1, Ordering::Relaxed);
            registry.validation_failures.fetch_add(1, Ordering::Relaxed);
            JobState::Failed {
                error: "validation failed: result contradicts the closed forms \
                        (artifact corrupt or stale)"
                    .into(),
                result: Some(*doc),
            }
        }
        Err(e) => {
            registry.failed.fetch_add(1, Ordering::Relaxed);
            JobState::Failed {
                error: e.to_string(),
                result: None,
            }
        }
    };
    *entry.state.lock().unwrap() = next;
    registry.running.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_analyze::Kernel;

    fn spec() -> KernelSpec {
        KernelSpec::new(Kernel::Cc)
    }

    #[test]
    fn pool_cap_admits_exactly_max_concurrent() {
        let reg = JobRegistry::new(2);
        let a = reg.submit("cc", spec()).unwrap();
        let b = reg.submit("cc", spec()).unwrap();
        assert_eq!((a.id, b.id), (1, 2));
        assert_eq!(reg.submit("cc", spec()).err(), Some((2, 2)));
        assert_eq!(reg.rejected.load(Ordering::Relaxed), 1);
        // a worker finishing frees the slot; the next id keeps counting
        reg.running.fetch_sub(1, Ordering::SeqCst);
        assert_eq!(reg.submit("cc", spec()).unwrap().id, 3);
        assert_eq!(reg.submitted(), 3);
    }

    #[test]
    fn lookup_is_by_id_and_cancel_all_flips_every_flag() {
        let reg = JobRegistry::new(8);
        let a = reg.submit("cc", spec()).unwrap();
        let b = reg.submit("bfs", spec()).unwrap();
        assert!(reg.lookup(0).is_none());
        assert!(reg.lookup(3).is_none());
        assert_eq!(reg.lookup(2).unwrap().kernel, "bfs");
        reg.cancel_all();
        assert!(a.stop.load(Ordering::SeqCst));
        assert!(b.stop.load(Ordering::SeqCst));
    }

    #[test]
    fn poll_document_tracks_state() {
        let reg = JobRegistry::new(1);
        let job = reg.submit("pagerank", spec()).unwrap();
        assert!(job.to_json().to_string().contains("\"state\":\"running\""));
        *job.state.lock().unwrap() = JobState::Failed {
            error: "cancelled".into(),
            result: None,
        };
        let doc = job.to_json().to_string();
        assert!(doc.contains("\"state\":\"failed\""), "{doc}");
        assert!(doc.contains("\"error\":\"cancelled\""), "{doc}");
        assert!(!doc.contains("result"), "{doc}");
    }
}
