//! The fault-injection proxy's own contract, proved against a minimal
//! HTTP upstream: every [`fault::Fault`] mode must produce exactly the
//! transport behaviour the failover path classifies, and modes must be
//! togglable at runtime — the failover integration tests lean on all of
//! it.

mod fault;

use fault::{Fault, FaultProxy};
use kron_serve::http::Client;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// A minimal keep-alive HTTP upstream answering every request with
/// `200` and `body`. Runs until the test process exits.
fn http_upstream(body: &'static str) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
    let addr = listener.local_addr().expect("upstream addr").to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { continue };
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    let Ok(n) = conn.read(&mut chunk) else { return };
                    if n == 0 {
                        return;
                    }
                    buf.extend_from_slice(&chunk[..n]);
                    // one response per request head (GETs carry no body)
                    while let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                        buf.drain(..end + 4);
                        let resp = format!(
                            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{}",
                            body.len(),
                            body
                        );
                        if conn.write_all(resp.as_bytes()).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
    addr
}

const TIMEOUT: Duration = Duration::from_millis(500);

#[test]
fn forward_mode_is_transparent() {
    let upstream = http_upstream("hello\n");
    let proxy = FaultProxy::spawn(&upstream);
    let mut client = Client::connect_timeout(proxy.addr(), TIMEOUT).unwrap();
    let (status, body) = client.get("/x").unwrap();
    assert_eq!((status, body.as_str()), (200, "hello\n"));
    // keep-alive through the proxy works too
    let (status, _) = client.get("/y").unwrap();
    assert_eq!(status, 200);
    assert!(proxy.accepted() >= 1);
}

#[test]
fn drop_severs_in_flight_and_new_connections_until_restored() {
    let upstream = http_upstream("hello\n");
    let proxy = FaultProxy::spawn(&upstream);
    let mut client = Client::connect_timeout(proxy.addr(), TIMEOUT).unwrap();
    assert_eq!(client.get("/x").unwrap().0, 200);

    proxy.set_mode(Fault::Drop);
    // the established (kept-alive) connection is severed...
    std::thread::sleep(Duration::from_millis(60)); // let the pumps notice
    assert!(client.get("/x").is_err(), "in-flight connection must die");
    // ...and a fresh one is accepted then closed before any byte flows
    // (the connect itself may already fail — equally dead)
    if let Ok(mut fresh) = Client::connect_timeout(proxy.addr(), TIMEOUT) {
        assert!(fresh.get("/x").is_err(), "dropped peer must not answer");
    }

    // runtime toggle back: the peer is alive again
    proxy.set_mode(Fault::Forward);
    let mut revived = Client::connect_timeout(proxy.addr(), TIMEOUT).unwrap();
    assert_eq!(revived.get("/x").unwrap().0, 200);
}

#[test]
fn blackhole_hangs_until_the_client_timeout() {
    let upstream = http_upstream("hello\n");
    let proxy = FaultProxy::spawn(&upstream);
    proxy.set_mode(Fault::Blackhole);
    let t0 = Instant::now();
    let mut client = Client::connect_timeout(proxy.addr(), TIMEOUT).unwrap();
    let err = client.get("/x").unwrap_err();
    let elapsed = t0.elapsed();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "a blackholed fetch must time out, got {err}"
    );
    assert!(
        elapsed >= Duration::from_millis(400) && elapsed < Duration::from_secs(5),
        "timeout must be bounded by the client's read timeout, took {elapsed:?}"
    );
}

#[test]
fn delay_slows_responses_without_breaking_them() {
    let upstream = http_upstream("hello\n");
    let proxy = FaultProxy::spawn(&upstream);
    proxy.set_mode(Fault::Delay(Duration::from_millis(80)));
    let mut client = Client::connect_timeout(proxy.addr(), TIMEOUT).unwrap();
    let t0 = Instant::now();
    let (status, body) = client.get("/x").unwrap();
    assert_eq!((status, body.as_str()), (200, "hello\n"));
    assert!(
        t0.elapsed() >= Duration::from_millis(80),
        "the response must have been held back"
    );
}

#[test]
fn corrupt_after_n_bytes_flips_the_tail() {
    let upstream = http_upstream("hello\n");
    let proxy = FaultProxy::spawn(&upstream);
    // The upstream's head is exactly this long for a 6-byte body; leave
    // it clean so the response still frames, and corrupt the body.
    let head = "HTTP/1.1 200 OK\r\nContent-Length: 6\r\n\r\n";
    proxy.set_mode(Fault::CorruptAfter(head.len()));
    let mut client = Client::connect_timeout(proxy.addr(), TIMEOUT).unwrap();
    let (status, body) = client.get_bytes("/x").unwrap();
    assert_eq!(status, 200);
    let flipped: Vec<u8> = b"hello\n".iter().map(|b| !b).collect();
    assert_eq!(body, flipped, "every body byte must be bit-flipped");

    // Corrupting from byte 0 garbles the status line itself: the client
    // must reject the response as unparseable (a transport failure).
    proxy.set_mode(Fault::CorruptAfter(0));
    let mut client = Client::connect_timeout(proxy.addr(), TIMEOUT).unwrap();
    assert!(client.get("/x").is_err(), "garbled head must not parse");
}
