//! Lifecycle tests for the async analytics-job API (`POST /jobs`,
//! `GET /jobs/<id>`, `DELETE /jobs/<id>`): submission and completion,
//! the pinned 429 at the pool cap, cooperative cancel (explicit and via
//! server shutdown), validation failure surfacing, and the wire's error
//! statuses.

use kron::KronProduct;
use kron_gen::deterministic::clique;
use kron_serve::http::Client;
use kron_serve::{ServeEngine, Server, ServerOptions, ServerReport};
use kron_stream::json::Json;
use kron_stream::{stream_product, OutputFormat, StreamConfig};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn run_dir(name: &str) -> (PathBuf, KronProduct) {
    let dir = std::env::temp_dir().join(format!("kron_jobs_api_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let c = KronProduct::new(clique(3), clique(3));
    let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
    cfg.shards = 3;
    stream_product(&c, &cfg).unwrap();
    (dir, c)
}

/// Flip one in-range column id in the last shard: structurally valid,
/// wrong statistics — exactly what validation exists to catch.
fn tamper_last_col(dir: &Path) {
    let mut shards: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "csr"))
        .collect();
    shards.sort();
    let path = shards.last().unwrap();
    let mut bytes = std::fs::read(path).unwrap();
    let at = bytes.len() - 8;
    let old = u64::from_le_bytes(bytes[at..].try_into().unwrap());
    bytes[at..].copy_from_slice(&(old ^ 1).to_le_bytes());
    std::fs::write(path, &bytes).unwrap();
}

/// Run `f` against a live server, then shut it down and return the
/// report.
fn with_server<F>(engine: &ServeEngine, opts: ServerOptions, f: F) -> ServerReport
where
    F: FnOnce(SocketAddr) + Send,
{
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run(engine, &opts, &stop));
        // raise the shutdown flag even if `f` panics — otherwise the
        // scope join waits on the server forever and the assertion
        // message is never seen
        struct StopOnDrop<'a>(&'a AtomicBool);
        impl Drop for StopOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let guard = StopOnDrop(&stop);
        f(addr);
        drop(guard);
        run.join().unwrap().unwrap()
    })
}

/// Poll `GET /jobs/<id>` until the job leaves `running` (or panic after
/// 30 s — every kernel here is either tiny or cancelled).
fn poll_until_settled(client: &mut Client, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = client.get(&format!("/jobs/{id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        if doc.req("state").unwrap().as_str() != Some("running") {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} never settled: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A job spec that runs forever until cancelled: an unreachable
/// (negative) tolerance with an absurd iteration budget. Tolerance 0
/// would not do — on a tiny graph the ranks hit a floating-point fixed
/// point and the residual becomes exactly 0.0 within milliseconds. Each
/// iteration checks the stop flag, so cancel is still prompt.
const ENDLESS_PAGERANK: &[u8] = br#"{"kernel":"pagerank","tol":-1,"iters":1000000000000}"#;

#[test]
fn jobs_run_to_done_and_results_carry_validation() {
    let (dir, c) = run_dir("done");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let report = with_server(&engine, ServerOptions::default(), |addr| {
        let mut client = Client::connect(addr).unwrap();

        let (status, body) = client.post("/jobs", br#"{"kernel":"tri-census"}"#).unwrap();
        assert_eq!(status, 202, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.req("id").unwrap().as_u64(), Some(1));
        assert_eq!(doc.req("kernel").unwrap().as_str(), Some("tri-census"));
        assert_eq!(doc.req("state").unwrap().as_str(), Some("running"));

        let doc = poll_until_settled(&mut client, 1);
        assert_eq!(doc.req("state").unwrap().as_str(), Some("done"), "{doc}");
        let result = doc.req("result").unwrap();
        assert_eq!(
            result
                .req("total_triangle_participation")
                .unwrap()
                .as_u128(),
            Some(c.total_triangle_participation())
        );
        assert_eq!(
            result
                .req("validation")
                .unwrap()
                .req("ok")
                .unwrap()
                .as_bool(),
            Some(true)
        );

        // a second job gets the next id and also completes
        let (status, body) = client
            .post("/jobs", br#"{"kernel":"bfs","source":0}"#)
            .unwrap();
        assert_eq!(status, 202, "{body}");
        assert_eq!(
            Json::parse(&body).unwrap().req("id").unwrap().as_u64(),
            Some(2)
        );
        let doc = poll_until_settled(&mut client, 2);
        assert_eq!(doc.req("state").unwrap().as_str(), Some("done"));
        assert_eq!(
            doc.req("result").unwrap().req("reached").unwrap().as_u64(),
            Some(c.num_vertices())
        );

        let (_, body) = client.get("/stats").unwrap();
        let stats = Json::parse(&body).unwrap();
        let jobs = stats.req("jobs").unwrap();
        assert_eq!(jobs.req("submitted").unwrap().as_u64(), Some(2));
        assert_eq!(jobs.req("done").unwrap().as_u64(), Some(2));
        assert_eq!(jobs.req("running").unwrap().as_u64(), Some(0));
        assert_eq!(jobs.req("failed").unwrap().as_u64(), Some(0));

        // GET /jobs lists both, in submission (= id) order, as
        // summaries only — no result documents
        let (status, body) = client.get("/jobs").unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body.trim(),
            r#"{"jobs":[{"id":1,"kernel":"tri-census","state":"done"},{"id":2,"kernel":"bfs","state":"done"}]}"#
        );
    });
    assert_eq!(report.jobs_submitted, 2);
    assert_eq!(report.jobs_failed, 0);
    assert_eq!(report.jobs_cancelled, 0);
    assert_eq!(report.job_validation_failures, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pool_cap_pins_429_and_point_queries_stay_served() {
    let (dir, c) = run_dir("cap");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let opts = ServerOptions {
        jobs: 1,
        ..Default::default()
    };
    let report = with_server(&engine, opts, |addr| {
        let mut client = Client::connect(addr).unwrap();

        let (status, _) = client.post("/jobs", ENDLESS_PAGERANK).unwrap();
        assert_eq!(status, 202);

        // the pool is full: the next submission is rejected, not queued
        let (status, body) = client.post("/jobs", br#"{"kernel":"cc"}"#).unwrap();
        assert_eq!(status, 429, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.req("error").unwrap().as_str(), Some("job pool is full"));
        assert_eq!(doc.req("running").unwrap().as_u64(), Some(1));
        assert_eq!(doc.req("cap").unwrap().as_u64(), Some(1));

        // …but point queries are still answered while the job spins
        let (status, body) = client.get("/query?q=degree%200").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.trim().parse::<u64>().unwrap(), c.degree(0));

        // cooperative cancel frees the slot
        let (status, body) = client.delete("/jobs/1").unwrap();
        assert_eq!(status, 202, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.req("cancel_requested").unwrap().as_bool(), Some(true));
        let doc = poll_until_settled(&mut client, 1);
        assert_eq!(doc.req("state").unwrap().as_str(), Some("failed"));
        assert_eq!(doc.req("error").unwrap().as_str(), Some("cancelled"));
        assert!(doc.get("result").is_none(), "{doc}");

        // slot free again: a new submission is admitted and finishes
        // (with id 2 — the rejected submission never consumed an id)
        let (status, body) = client.post("/jobs", br#"{"kernel":"cc"}"#).unwrap();
        assert_eq!(status, 202, "{body}");
        let id = Json::parse(&body)
            .unwrap()
            .req("id")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(id, 2);
        let doc = poll_until_settled(&mut client, id);
        assert_eq!(doc.req("state").unwrap().as_str(), Some("done"));
        assert_eq!(
            doc.req("result")
                .unwrap()
                .req("components")
                .unwrap()
                .as_u64(),
            Some(1)
        );

        let (_, body) = client.get("/stats").unwrap();
        let jobs = Json::parse(&body).unwrap().req("jobs").unwrap().clone();
        assert_eq!(jobs.req("rejected").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.req("cancelled").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.req("failed").unwrap().as_u64(), Some(0));
    });
    assert_eq!(report.jobs_submitted, 2, "the 429 submission never counts");
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_failed, 0, "cancelled is not failed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_cancels_running_jobs_cooperatively() {
    let (dir, _c) = run_dir("shutdown");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    // no DELETE: flipping the server's shutdown flag alone must cancel
    // the endless job, or run() would never return
    let report = with_server(&engine, ServerOptions::default(), |addr| {
        let mut client = Client::connect(addr).unwrap();
        let (status, _) = client.post("/jobs", ENDLESS_PAGERANK).unwrap();
        assert_eq!(status, 202);
    });
    assert_eq!(report.jobs_submitted, 1);
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_failed, 0);
    assert_eq!(report.job_validation_failures, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tampered_artifact_fails_the_job_with_the_mismatch_report() {
    let (dir, _c) = run_dir("tampered");
    tamper_last_col(&dir);
    // structural open only: checksums would catch the tamper at startup,
    // and this test is about the *job* catching it at whole-graph scale
    let engine = ServeEngine::open(&dir).unwrap();
    let report = with_server(&engine, ServerOptions::default(), |addr| {
        let mut client = Client::connect(addr).unwrap();
        let (status, _) = client.post("/jobs", br#"{"kernel":"tri-census"}"#).unwrap();
        assert_eq!(status, 202);
        let doc = poll_until_settled(&mut client, 1);
        assert_eq!(doc.req("state").unwrap().as_str(), Some("failed"), "{doc}");
        assert!(
            doc.req("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("validation failed"),
            "{doc}"
        );
        // the failed job keeps its full result document, mismatch fields
        // included, so the poller sees exactly what diverged
        let validation = doc.req("result").unwrap().req("validation").unwrap();
        assert_eq!(validation.req("ok").unwrap().as_bool(), Some(false));

        let (_, body) = client.get("/stats").unwrap();
        let jobs = Json::parse(&body).unwrap().req("jobs").unwrap().clone();
        assert_eq!(jobs.req("validation_failures").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.req("failed").unwrap().as_u64(), Some(1));
    });
    assert_eq!(report.jobs_failed, 1);
    assert_eq!(report.job_validation_failures, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn job_wire_rejects_malformed_requests_with_the_pinned_statuses() {
    let (dir, _c) = run_dir("wire");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let report = with_server(&engine, ServerOptions::default(), |addr| {
        let mut client = Client::connect(addr).unwrap();

        for (body, needle) in [
            (&b"not json"[..], "error:"),
            (br#"{"kernel":"frobnicate"}"#, "unknown kernel"),
            (br#"{"source":3}"#, "kernel"),
            (br#"{"kernel":"bfs","sauce":1}"#, "sauce"),
        ] {
            let (status, resp) = client.post("/jobs", body).unwrap();
            assert_eq!(status, 400, "{resp}");
            assert!(resp.contains(needle), "{resp}");
        }

        let (status, _) = client.get("/jobs/7").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client.delete("/jobs/7").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client.get("/jobs/xyz").unwrap();
        assert_eq!(status, 400);
        // the collection answers GET with a listing (empty so far);
        // other methods stay 405
        let (status, body) = client.get("/jobs").unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.trim(), r#"{"jobs":[]}"#);
        let (status, _) = client.delete("/jobs").unwrap();
        assert_eq!(status, 405);

        // a settled job answers GET but refuses POST
        let (status, _) = client.post("/jobs", br#"{"kernel":"cc"}"#).unwrap();
        assert_eq!(status, 202);
        poll_until_settled(&mut client, 1);
        let (status, _) = client.post("/jobs/1", b"").unwrap();
        assert_eq!(status, 405);
        // cancel after completion is an accepted no-op
        let (status, _) = client.delete("/jobs/1").unwrap();
        assert_eq!(status, 202);
        let doc = poll_until_settled(&mut client, 1);
        assert_eq!(doc.req("state").unwrap().as_str(), Some("done"));
    });
    assert_eq!(report.jobs_submitted, 1);
    // 4 rejected bodies + the unparsable id
    assert_eq!(report.bad_requests, 5);
    std::fs::remove_dir_all(&dir).ok();
}
