//! Property tests for the incremental HTTP request parser
//! (`kron_serve::http::RequestBuffer`) — the state machine under every
//! connection of the `poll(2)` event loop.
//!
//! The loop feeds the parser whatever fragments `read(2)` happens to
//! return, so the invariants that matter are about *streams*, not
//! single buffers:
//!
//! * **split invariance** — any fragmentation of the same byte stream
//!   yields the same request sequence (a request must never parse
//!   differently because a TCP segment boundary moved);
//! * **garbage safety** — arbitrary bytes either parse, ask for more,
//!   or fail with `InvalidData`; they never panic and never make the
//!   parser loop without consuming input;
//! * **cap enforcement** — the `MAX_HEAD`/`MAX_BODY` limits hold at
//!   every split point: an oversized head errors before buffering
//!   unboundedly, an oversized declared body errors as soon as the
//!   head completes, wherever the fragment boundaries fall.

use kron_serve::http::{encode_query_component, Request, RequestBuffer, MAX_BODY, MAX_HEAD};
use proptest::prelude::*;

/// Short printable string over a fixed 64-symbol alphabet.
fn small_string(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0..64u8, 0..max_len).prop_map(|v| {
        const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _";
        v.into_iter().map(|b| CHARSET[b as usize] as char).collect()
    })
}

/// The wire bytes of one syntactically valid request: random method,
/// path, query pairs, body (arbitrary bytes — it may contain `\r\n\r\n`,
/// which must not confuse framing), and connection header.
fn arb_request_bytes() -> impl Strategy<Value = Vec<u8>> {
    (
        (0..3usize, small_string(8)),
        (
            proptest::collection::vec((0..4usize, small_string(12)), 0..3),
            proptest::collection::vec(0..=255u8, 0..300),
        ),
        0..3u8,
    )
        .prop_map(|((m, path), (pairs, body), conn)| {
            let method = ["GET", "POST", "DELETE"][m];
            let mut target = format!("/{}", encode_query_component(&path));
            for (i, (k, v)) in pairs.iter().enumerate() {
                target.push(if i == 0 { '?' } else { '&' });
                target.push_str(["q", "x", "v", "name"][*k]);
                target.push('=');
                target.push_str(&encode_query_component(v));
            }
            let mut bytes = format!(
                "{method} {target} HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n",
                body.len()
            )
            .into_bytes();
            match conn {
                1 => bytes.extend_from_slice(b"Connection: close\r\n"),
                2 => bytes.extend_from_slice(b"Connection: keep-alive\r\n"),
                _ => {}
            }
            bytes.extend_from_slice(b"\r\n");
            bytes.extend_from_slice(&body);
            bytes
        })
}

/// Parse every complete request currently buffered.
fn drain(buf: &mut RequestBuffer) -> Result<Vec<Request>, std::io::Error> {
    let mut out = Vec::new();
    loop {
        match buf.next_request()? {
            Some(r) => out.push(r),
            None => return Ok(out),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_fragmentation_yields_the_same_request_sequence(
        reqs in proptest::collection::vec(arb_request_bytes(), 1..4),
        sizes in proptest::collection::vec(1..64usize, 1..16),
    ) {
        let stream: Vec<u8> = reqs.concat();

        // reference: the whole (pipelined) stream in one push
        let mut whole = RequestBuffer::new();
        whole.push(&stream);
        let reference = drain(&mut whole).expect("generated requests are valid");
        prop_assert_eq!(reference.len(), reqs.len());
        prop_assert!(whole.is_empty(), "reference left residue");

        // same bytes, arbitrary chunking, parsing between every push
        let mut frag = RequestBuffer::new();
        let mut got = Vec::new();
        let (mut i, mut k) = (0, 0);
        while i < stream.len() {
            let n = sizes[k % sizes.len()].min(stream.len() - i);
            k += 1;
            frag.push(&stream[i..i + n]);
            i += n;
            got.extend(drain(&mut frag).expect("split must not invent errors"));
        }
        prop_assert_eq!(got, reference);
        prop_assert!(frag.is_empty(), "fragmented parse left residue");
    }

    #[test]
    fn garbage_never_panics_and_always_makes_progress(
        bytes in proptest::collection::vec(0..=255u8, 0..600),
        sizes in proptest::collection::vec(1..48usize, 1..8),
    ) {
        let mut buf = RequestBuffer::new();
        let (mut i, mut k) = (0, 0);
        let mut steps = 0usize;
        'outer: while i < bytes.len() {
            let n = sizes[k % sizes.len()].min(bytes.len() - i);
            k += 1;
            buf.push(&bytes[i..i + n]);
            i += n;
            loop {
                // Each parsed request consumes ≥ 16 bytes ("GET / HTTP/1.1"
                // + CRLFCRLF), so the total parse work is linearly bounded
                // — the loop cannot spin on an unconsumed buffer.
                steps += 1;
                prop_assert!(steps <= 2 * bytes.len() + 2, "parser failed to make progress");
                match buf.next_request() {
                    Ok(Some(_)) => {} // garbage can embed valid requests
                    Ok(None) => break,
                    Err(e) => {
                        // the event loop answers 400 and drops the
                        // connection on exactly this kind
                        prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                        break 'outer;
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_heads_error_at_whatever_split_point(
        sizes in proptest::collection::vec(1024..16384usize, 1..12),
        pad in 1..4096usize,
    ) {
        // an endless header line: no terminator ever arrives
        let total = MAX_HEAD + pad;
        let chunk = vec![b'a'; 16384];
        let mut buf = RequestBuffer::new();
        let (mut sent, mut k) = (0, 0);
        let mut errored = false;
        while sent < total {
            let n = sizes[k % sizes.len()].min(total - sent);
            k += 1;
            buf.push(&chunk[..n]);
            sent += n;
            match buf.next_request() {
                Ok(None) => prop_assert!(
                    buf.len() <= MAX_HEAD,
                    "parser buffered {} > MAX_HEAD without erroring",
                    buf.len()
                ),
                Ok(Some(r)) => panic!("an 'aaaa…' stream is not a request: {r:?}"),
                Err(_) => {
                    errored = true;
                    break;
                }
            }
        }
        prop_assert!(errored, "head cap never enforced at {sent} bytes buffered");
    }

    #[test]
    fn oversized_declared_bodies_error_at_whatever_split_point(
        excess in 1..1_000_000u64,
        cut_seed in 0..10_000usize,
    ) {
        let head = format!(
            "POST /batch HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY as u64 + excess
        );
        let bytes = head.as_bytes();
        let cut = cut_seed % (bytes.len() + 1);
        let mut buf = RequestBuffer::new();
        buf.push(&bytes[..cut]);
        let first = buf.next_request();
        if cut < bytes.len() {
            // head incomplete (or complete-enough to already see the bad
            // length): never a parsed request
            prop_assert!(!matches!(first, Ok(Some(_))));
            if first.is_ok() {
                buf.push(&bytes[cut..]);
                prop_assert!(
                    buf.next_request().is_err(),
                    "a {excess}-bytes-over body cap was admitted"
                );
            }
        } else {
            prop_assert!(first.is_err());
        }
    }
}
