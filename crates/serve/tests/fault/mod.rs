//! Fault-injection TCP proxy for failover tests.
//!
//! A [`FaultProxy`] sits between a cluster client (a node's remote-row
//! fetches, or the router's forwards) and one upstream server, forwarding
//! raw bytes in both directions. Its [`Fault`] mode is runtime-togglable
//! ([`FaultProxy::set_mode`]), so a test can turn a healthy peer into a
//! dead, hung, slow, or corrupting one *mid-request* — making
//! kill-a-node, flappy-peer, and slow-peer scenarios deterministic
//! in-tree tests instead of smoke-script luck.
//!
//! The proxy works strictly below HTTP: it never parses what it
//! forwards, so it exercises exactly the transport failures the failover
//! path classifies (connect errors, timeouts, torn streams, garbage
//! bytes).
//!
//! Included by several test crates (via `mod fault;` or `#[path]`), each
//! using a different subset of the modes.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The proxy's current behaviour. Mode changes apply to new connections
/// *and* to in-flight ones (pumps re-check the mode on every chunk).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Forward bytes untouched (a healthy peer).
    Forward,
    /// Sever new and in-flight connections immediately (a SIGKILLed
    /// process: connects are accepted by the still-bound listener but
    /// closed before any byte flows, so clients see an abrupt EOF).
    Drop,
    /// Accept and read, but never forward or answer (a hung process:
    /// clients block until their read timeout).
    Blackhole,
    /// Close both directions abruptly as soon as the next chunk flows
    /// (a connection reset mid-stream).
    Reset,
    /// Hold every upstream→client chunk for this long (a slow peer).
    Delay(Duration),
    /// Forward this many upstream→client bytes untouched, then flip
    /// every bit of the rest (a corrupting link).
    CorruptAfter(usize),
}

/// A live proxy listening on an ephemeral loopback port; dropping it
/// stops the accept loop and severs every in-flight connection.
pub struct FaultProxy {
    addr: String,
    mode: Arc<Mutex<Fault>>,
    stop: Arc<AtomicBool>,
    /// Connections accepted so far (all modes).
    accepted: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy forwarding to `upstream` (e.g. `127.0.0.1:9001`),
    /// initially in [`Fault::Forward`] mode.
    pub fn spawn(upstream: &str) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy listener");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let mode = Arc::new(Mutex::new(Fault::Forward));
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let (mode, stop, accepted) = (mode.clone(), stop.clone(), accepted.clone());
            let upstream = upstream.to_string();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            let current = *mode.lock().unwrap();
                            if current == Fault::Drop {
                                drop(client); // sever before any byte flows
                                continue;
                            }
                            let (mode, stop, upstream) =
                                (mode.clone(), stop.clone(), upstream.clone());
                            std::thread::spawn(move || serve_conn(client, &upstream, &mode, &stop));
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        FaultProxy {
            addr,
            mode,
            stop,
            accepted,
            accept_thread: Some(accept_thread),
        }
    }

    /// The proxy's own `host:port` — hand this to `--peers` / discovery
    /// in place of the upstream's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Switch behaviour; applies to new and in-flight connections.
    pub fn set_mode(&self, mode: Fault) {
        *self.mode.lock().unwrap() = mode;
    }

    /// Connections accepted so far (any mode) — lets a test assert that
    /// traffic actually flowed through the proxy.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

/// Serve one proxied connection: two pump threads copy bytes in each
/// direction, each re-checking the fault mode per chunk.
fn serve_conn(client: TcpStream, upstream: &str, mode: &Arc<Mutex<Fault>>, stop: &Arc<AtomicBool>) {
    let Ok(server) = TcpStream::connect(upstream) else {
        return; // upstream itself is down: client sees EOF
    };
    let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let up = {
        let (mode, stop) = (mode.clone(), stop.clone());
        std::thread::spawn(move || pump(client, server, &mode, &stop, Direction::ClientToServer))
    };
    pump(server2, client2, mode, stop, Direction::ServerToClient);
    up.join().ok();
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    ClientToServer,
    /// Delay and corruption apply to response bytes only, so a request
    /// always reaches the upstream intact — the interesting failures are
    /// the ones the client has to *detect*, not ones the server rejects.
    ServerToClient,
}

/// Copy `from` → `to` until EOF, error, or a fault mode says otherwise.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    mode: &Mutex<Fault>,
    stop: &AtomicBool,
    dir: Direction,
) {
    // Short read timeout so mode/stop changes take effect on idle
    // connections too, not only when bytes flow.
    from.set_read_timeout(Some(Duration::from_millis(20))).ok();
    let sever = |a: &TcpStream, b: &TcpStream| {
        a.shutdown(Shutdown::Both).ok();
        b.shutdown(Shutdown::Both).ok();
    };
    let mut forwarded = 0usize;
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::Relaxed) {
            sever(&from, &to);
            return;
        }
        match *mode.lock().unwrap() {
            Fault::Drop | Fault::Reset => {
                // Reset differs from Drop only in intent (it is meant to
                // be flipped mid-stream); both sever abruptly.
                sever(&from, &to);
                return;
            }
            _ => {}
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // EOF: propagate the half-close and stop this pump.
                to.shutdown(Shutdown::Write).ok();
                return;
            }
            Ok(n) => n,
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                sever(&from, &to);
                return;
            }
        };
        // Re-read the mode after the read: a test may flip it while the
        // upstream is mid-response.
        let current = *mode.lock().unwrap();
        match current {
            Fault::Drop | Fault::Reset => {
                sever(&from, &to);
                return;
            }
            Fault::Blackhole => {
                // swallow the chunk; keep reading so the peer never
                // blocks on a full socket buffer, but forward nothing
                continue;
            }
            Fault::Delay(d) if dir == Direction::ServerToClient => {
                std::thread::sleep(d);
            }
            Fault::CorruptAfter(clean) if dir == Direction::ServerToClient => {
                for (i, byte) in buf[..n].iter_mut().enumerate() {
                    if forwarded + i >= clean {
                        *byte = !*byte;
                    }
                }
            }
            _ => {}
        }
        forwarded += n;
        if to.write_all(&buf[..n]).is_err() {
            sever(&from, &to);
            return;
        }
    }
}
