//! Stress and misbehaving-client tests for the `poll(2)` event loop
//! behind `Server::run` (see `crate::event_loop`).
//!
//! The blocking-loop era tied every connection to a thread, so "many
//! idle keep-alive peers" and "one pathologically slow peer" were
//! invisible failure modes. These tests pin the event-loop contract:
//!
//! * 1K concurrent keep-alive clients get answers **byte-identical** to
//!   a single-threaded `run_batch` over the same engine;
//! * pipelined requests come back in order;
//! * a slow-loris client is 408-closed on the hard read deadline
//!   without stalling anyone else;
//! * a client that stops reading its (large) response is closed by the
//!   write no-progress timeout;
//! * half-close (`shutdown(Write)`) still gets the buffered request
//!   answered, then a clean close;
//! * idle keep-alive connections cost ~10 poll ticks/s, not a busy
//!   spin (the `connections.polls` gauge);
//! * transport-layer casualties (timeouts, mid-request FIN) count in
//!   the `/stats` `connections` object and **never** in `bad_requests`.

use kron::KronProduct;
use kron_graph::Graph;
use kron_serve::http::Client;
use kron_serve::{parse_queries, run_batch, ServeEngine, Server, ServerOptions};
use kron_stream::json::Json;
use kron_stream::{stream_product, OutputFormat, StreamConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Stream a small product (16 vertices, 2 shards) to a temp run dir.
fn run_dir(name: &str) -> (std::path::PathBuf, KronProduct) {
    let dir = std::env::temp_dir().join(format!("kron_event_loop_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let a = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
    let c = KronProduct::new(a.clone(), a);
    let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
    cfg.shards = 2;
    stream_product(&c, &cfg).unwrap();
    (dir, c)
}

/// `GET /stats` through a fresh connection, parsed.
fn stats(addr: SocketAddr) -> Json {
    let mut client = Client::connect(addr).unwrap();
    let (status, body) = client.get("/stats").unwrap();
    assert_eq!(status, 200, "{body}");
    Json::parse(&body).unwrap()
}

fn conn_gauge(doc: &Json, key: &str) -> u64 {
    doc.req("connections")
        .unwrap()
        .req(key)
        .unwrap()
        .as_u64()
        .unwrap()
}

/// Poll `/stats` until `pred` holds or the deadline passes.
fn wait_for_stats(addr: SocketAddr, deadline: Duration, pred: impl Fn(&Json) -> bool) -> Json {
    let t0 = Instant::now();
    loop {
        let doc = stats(addr);
        if pred(&doc) || t0.elapsed() > deadline {
            return doc;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn thousand_keepalive_clients_match_single_threaded_run_batch() {
    const CLIENTS: usize = 1000;
    const THREADS: usize = 16;

    let (dir, _c) = run_dir("thousand");
    let engine = ServeEngine::open_verified(&dir).unwrap();

    // One query script per client; the single-threaded reference answers
    // all of them up front.
    let n = 16u64;
    let mut text = String::new();
    for i in 0..CLIENTS as u64 {
        text.push_str(&format!(
            "degree {}\ntri_vertex {}\nhas_edge {} {}\n",
            i % n,
            (i + 5) % n,
            i % n,
            (i * 7 + 3) % n
        ));
    }
    let queries = parse_queries(&text).unwrap();
    let reference = run_batch(&engine, &queries);
    let expected: Vec<String> = queries
        .iter()
        .zip(&reference.answers)
        .map(|(q, a)| format!("{q} = {}", a.as_ref().unwrap()))
        .collect();

    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    // +1: the main thread joins both rendezvous.
    let all_open = Barrier::new(THREADS + 1);
    let sampled = Barrier::new(THREADS + 1);

    std::thread::scope(|s| {
        let run = s.spawn(|| {
            server.run(
                &engine,
                &ServerOptions {
                    threads: 8,
                    ..Default::default()
                },
                &stop,
            )
        });

        for t in 0..THREADS {
            let (expected, queries, all_open, sampled) = (&expected, &queries, &all_open, &sampled);
            s.spawn(move || {
                // This thread owns clients t, t+THREADS, t+2·THREADS, …
                // — all of them connected (and kept alive) at once.
                let mine: Vec<usize> = (t..CLIENTS).step_by(THREADS).collect();
                let mut clients: Vec<Client> = mine
                    .iter()
                    .map(|_| Client::connect(addr).unwrap())
                    .collect();
                for (&i, client) in mine.iter().zip(&mut clients) {
                    // three /query round trips, byte-compared
                    for k in 0..3 {
                        let q = &queries[3 * i + k];
                        let path = format!(
                            "/query?q={}",
                            kron_serve::http::encode_query_component(&q.to_string())
                        );
                        let (status, body) = client.get(&path).unwrap();
                        assert_eq!(status, 200, "{body}");
                        let want = expected[3 * i + k].split(" = ").nth(1).unwrap();
                        assert_eq!(body, format!("{want}\n"), "client {i} query {k}");
                    }
                    // one /batch with the same three lines, byte-compared
                    // against the run_batch rendering
                    let body: String = (0..3)
                        .map(|k| format!("{}\n", queries[3 * i + k]))
                        .collect();
                    let (status, resp) = client.post("/batch", body.as_bytes()).unwrap();
                    assert_eq!(status, 200, "{resp}");
                    let want: String = (0..3)
                        .map(|k| format!("{}\n", expected[3 * i + k]))
                        .collect();
                    assert_eq!(resp, want, "client {i} batch");
                }
                all_open.wait(); // every client of every thread still open
                sampled.wait(); // main has read /stats
                drop(clients);
            });
        }

        all_open.wait();
        let doc = stats(addr);
        assert!(
            conn_gauge(&doc, "peak") >= CLIENTS as u64,
            "peak {} < {CLIENTS}",
            conn_gauge(&doc, "peak")
        );
        assert_eq!(doc.req("bad_requests").unwrap().as_u64(), Some(0));
        // every query the reference answered, the server answered
        assert_eq!(
            doc.req("queries").unwrap().as_u64(),
            Some(2 * queries.len() as u64), // once via /query, once via /batch
        );
        sampled.wait();

        stop.store(true, Ordering::SeqCst);
        let report = run.join().unwrap().unwrap();
        assert_eq!(report.bad_requests, 0);
        assert_eq!(report.queries, 2 * queries.len() as u64);
        assert_eq!(report.query_errors, 0);
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (dir, c) = run_dir("pipeline");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run(&engine, &ServerOptions::default(), &stop));

        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // three requests in one write; the last asks to close so the
        // response stream has a definite end
        raw.write_all(
            b"GET /query?q=degree%200 HTTP/1.1\r\n\r\n\
              GET /query?q=degree%201 HTTP/1.1\r\n\r\n\
              GET /query?q=degree%202 HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut all = Vec::new();
        raw.read_to_end(&mut all).unwrap();
        let text = String::from_utf8(all).unwrap();

        // exactly three responses, in request order
        let mut rest = text.as_str();
        for v in 0..3u64 {
            assert!(rest.starts_with("HTTP/1.1 200 OK\r\n"), "{rest}");
            let head_end = rest.find("\r\n\r\n").unwrap();
            let len: usize = rest[..head_end]
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .parse()
                .unwrap();
            let body = &rest[head_end + 4..head_end + 4 + len];
            assert_eq!(body, format!("{}\n", c.degree(v)), "response {v}");
            rest = &rest[head_end + 4 + len..];
        }
        assert!(rest.is_empty(), "trailing bytes: {rest:?}");

        stop.store(true, Ordering::SeqCst);
        run.join().unwrap().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_loris_is_timed_out_without_stalling_other_clients() {
    let (dir, c) = run_dir("loris");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| {
            server.run(
                &engine,
                &ServerOptions {
                    io_timeout: Some(Duration::from_millis(300)),
                    ..Default::default()
                },
                &stop,
            )
        });

        let loris = TcpStream::connect(addr).unwrap();
        loris
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let t0 = Instant::now();
        let writer = {
            let mut w = loris.try_clone().unwrap();
            s.spawn(move || {
                // 1 byte per 80 ms: steady *progress* that never
                // completes a request — the hard deadline must fire
                // anyway. Write errors mean the server already closed
                // us, which is the point.
                for &b in b"GET /query?q=degree%200 HTTP/1.1\r\nHost: slow\r\n" {
                    if w.write_all(&[b]).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(80));
                }
            })
        };

        // meanwhile a normal client is served promptly throughout
        let mut client = Client::connect(addr).unwrap();
        for _ in 0..8 {
            let (status, body) = client.get("/query?q=degree%203").unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("{}\n", c.degree(3)));
            std::thread::sleep(Duration::from_millis(50));
        }

        // the loris connection ends within a bounded time of its first
        // byte; the 408 is best-effort (a racing drip byte can turn the
        // close into a reset), the *close* is the contract
        let mut got = Vec::new();
        let mut r = loris.try_clone().unwrap();
        let _ = r.read_to_end(&mut got);
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(250) && elapsed < Duration::from_secs(5),
            "loris lived {elapsed:?}"
        );
        if !got.is_empty() {
            let text = String::from_utf8_lossy(&got);
            assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        }
        writer.join().unwrap();

        let doc = stats(addr);
        assert!(conn_gauge(&doc, "timeout_closed") >= 1);
        assert_eq!(doc.req("bad_requests").unwrap().as_u64(), Some(0));

        stop.store(true, Ordering::SeqCst);
        run.join().unwrap().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn client_that_stops_reading_is_write_timeout_closed() {
    let (dir, _c) = run_dir("stalled_reader");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| {
            server.run(
                &engine,
                &ServerOptions {
                    io_timeout: Some(Duration::from_millis(300)),
                    ..Default::default()
                },
                &stop,
            )
        });

        // A /batch whose response (~15 MB) dwarfs any socket buffer…
        let mut body = String::new();
        for i in 0..500_000u64 {
            body.push_str(&format!("neighbors {}\n", i % 16));
        }
        let mut raw = TcpStream::connect(addr).unwrap();
        write!(
            raw,
            "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        raw.write_all(body.as_bytes()).unwrap();
        // …and then never read a byte of it. The server must give up on
        // us via the write no-progress timeout, counted as a transport
        // close, not a bad request. (The batch itself takes a while to
        // execute; the timeout clock only runs while *writing*.)
        let doc = wait_for_stats(addr, Duration::from_secs(30), |d| {
            conn_gauge(d, "timeout_closed") >= 1
        });
        assert!(
            conn_gauge(&doc, "timeout_closed") >= 1,
            "server never gave up on the stalled reader: {doc}"
        );
        assert_eq!(doc.req("bad_requests").unwrap().as_u64(), Some(0));
        drop(raw);

        stop.store(true, Ordering::SeqCst);
        run.join().unwrap().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn half_close_gets_the_buffered_request_answered() {
    let (dir, c) = run_dir("half_close");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run(&engine, &ServerOptions::default(), &stop));

        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(b"GET /query?q=degree%203 HTTP/1.1\r\n\r\n")
            .unwrap();
        // FIN our write side before the server has (necessarily) even
        // parsed the request: it must still answer, flush, then close.
        raw.shutdown(Shutdown::Write).unwrap();
        let mut all = Vec::new();
        raw.read_to_end(&mut all).unwrap();
        let text = String::from_utf8(all).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(
            text.ends_with(&format!("\r\n\r\n{}\n", c.degree(3))),
            "{text}"
        );

        stop.store(true, Ordering::SeqCst);
        run.join().unwrap().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn idle_keepalive_connections_do_not_busy_spin() {
    let (dir, _c) = run_dir("no_spin");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run(&engine, &ServerOptions::default(), &stop));

        // park 8 keep-alive connections on the loop
        let mut parked: Vec<Client> = (0..8).map(|_| Client::connect(addr).unwrap()).collect();
        for p in &mut parked {
            assert_eq!(p.get("/healthz").unwrap().0, 200);
        }
        let before = conn_gauge(&stats(addr), "polls");
        std::thread::sleep(Duration::from_millis(1200));
        let after = conn_gauge(&stats(addr), "polls");
        let delta = after - before;
        // An idle loop ticks at ~10/s (the 100 ms shutdown-check tick)
        // plus a handful of wakeups for the two /stats calls. The
        // regression this pins: the old BSD `set_nonblocking(false)`
        // workaround inverted means sockets *are* non-blocking — if the
        // loop mis-polled idle connections it would spin thousands of
        // times here.
        assert!(delta >= 5, "loop looks stuck: {delta} polls in 1.2s");
        assert!(delta <= 100, "busy spin: {delta} polls in 1.2s");
        drop(parked);

        stop.store(true, Ordering::SeqCst);
        run.join().unwrap().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn idle_keepalive_connections_are_closed_after_the_idle_timeout() {
    let (dir, _c) = run_dir("idle_close");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| {
            server.run(
                &engine,
                &ServerOptions {
                    idle_timeout: Some(Duration::from_millis(250)),
                    ..Default::default()
                },
                &stop,
            )
        });

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().0, 200);
        std::thread::sleep(Duration::from_millis(900));
        // the server hung up while we idled; the next round trip fails
        assert!(client.get("/healthz").is_err());

        let doc = stats(addr);
        assert!(conn_gauge(&doc, "idle_closed") >= 1, "{doc}");
        assert_eq!(doc.req("bad_requests").unwrap().as_u64(), Some(0));

        stop.store(true, Ordering::SeqCst);
        run.join().unwrap().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// The transport-vs-framing accounting rule, end to end: connections
/// lost to timeouts or mid-request hangups land in `connections`
/// (`idle_closed`/`timeout_closed`/the `open` gauge), while
/// `bad_requests` moves **only** for actual framing errors.
#[test]
fn transport_closes_are_never_counted_as_bad_requests() {
    let (dir, _c) = run_dir("transport_vs_framing");
    let engine = ServeEngine::open_verified(&dir).unwrap();
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| {
            server.run(
                &engine,
                &ServerOptions {
                    idle_timeout: Some(Duration::from_millis(250)),
                    io_timeout: Some(Duration::from_millis(250)),
                    ..Default::default()
                },
                &stop,
            )
        });

        // 1. FIN mid-request: a truncated request is abandoned silently
        let mut fin = TcpStream::connect(addr).unwrap();
        fin.write_all(b"GET /he").unwrap();
        drop(fin);

        // 2. a started-but-never-finished request rides into the hard
        //    read deadline (timeout_closed)
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /stats HT").unwrap();
        slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sink = Vec::new();
        let _ = slow.read_to_end(&mut sink); // until the server closes us

        // 3. a keep-alive connection left idle (idle_closed)
        let idle = TcpStream::connect(addr).unwrap();
        let doc = wait_for_stats(addr, Duration::from_secs(5), |d| {
            conn_gauge(d, "idle_closed") >= 1 && conn_gauge(d, "timeout_closed") >= 1
        });
        drop(idle);

        assert!(conn_gauge(&doc, "timeout_closed") >= 1, "{doc}");
        assert!(conn_gauge(&doc, "idle_closed") >= 1, "{doc}");
        // none of the above is a framing error…
        assert_eq!(doc.req("bad_requests").unwrap().as_u64(), Some(0));

        // …but actual garbage still is (the contrast that pins the rule)
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        garbage
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut resp = Vec::new();
        let _ = garbage.read_to_end(&mut resp);
        assert!(
            String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 400"),
            "{resp:?}"
        );
        let doc = stats(addr);
        assert_eq!(doc.req("bad_requests").unwrap().as_u64(), Some(1));

        stop.store(true, Ordering::SeqCst);
        let report = run.join().unwrap().unwrap();
        assert_eq!(report.bad_requests, 1);
    });
    std::fs::remove_dir_all(&dir).ok();
}
