//! Opening a completed CSR run directory for in-place querying.
//!
//! [`ShardSet`] is the bridge between generation and serving: it reads
//! `run.json` and every shard manifest, memory-maps every CSR artifact
//! once, cross-checks each mapped header against its manifest, and then
//! routes product vertices to shards by the plan's contiguous vertex
//! ranges. After a successful open, every adjacency row of the product is
//! reachable as a zero-copy `&[u64]` slice without loading the graph.
//!
//! Two levels of validation are offered:
//!
//! * [`ShardSet::open`] — structural: JSON parses, the format is CSR, the
//!   shard vertex ranges tile `0..n_C` contiguously, every artifact's
//!   header (magic, `vertex_lo`, `num_rows`, `nnz`, offsets monotonicity)
//!   agrees with its manifest and file size, and the per-shard entry
//!   counts sum to `run.json`'s total. `O(shards + Σ num_rows)`.
//! * [`ShardSet::open_verified`] — additionally recomputes each shard's
//!   order-independent content checksum from the mapped columns and
//!   compares it to the manifest. `O(nnz)`, done exactly once at open;
//!   queries afterwards trust the mapping.

use crate::csr::CsrReader;
use crate::driver::{load_manifest, RUN_FILE};
use crate::manifest::{read_json, OutputFormat, RunSummary, ShardManifest, StreamHash};
use crate::StreamError;
use std::path::{Path, PathBuf};

/// One shard of an opened run: its manifest plus the live mapping.
pub struct OpenShard {
    /// The shard's manifest, as read from `shard_NNNNN.json`.
    pub manifest: ShardManifest,
    /// The mmap-backed zero-copy reader over the shard's CSR artifact.
    pub reader: CsrReader,
}

impl std::fmt::Debug for OpenShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenShard")
            .field("manifest", &self.manifest)
            .field("mapped_nnz", &self.reader.nnz())
            .finish()
    }
}

/// A complete CSR run directory, opened and validated once, with every
/// shard memory-mapped and routable by product vertex.
///
/// [`ShardSet::open`] validates structure only; [`ShardSet::open_verified`]
/// additionally recomputes every shard's content checksum once.
pub struct ShardSet {
    dir: PathBuf,
    run: RunSummary,
    shards: Vec<OpenShard>,
    num_vertices: u64,
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .field("num_vertices", &self.num_vertices)
            .finish()
    }
}

impl ShardSet {
    /// Open a run directory with structural validation (headers, sizes,
    /// ranges — no content hashing).
    pub fn open(dir: &Path) -> Result<ShardSet, StreamError> {
        Self::open_impl(dir, false)
    }

    /// Open a run directory and additionally verify every shard's content
    /// checksum against its manifest, once.
    pub fn open_verified(dir: &Path) -> Result<ShardSet, StreamError> {
        Self::open_impl(dir, true)
    }

    fn open_impl(dir: &Path, verify: bool) -> Result<ShardSet, StreamError> {
        let run_doc = read_json(&dir.join(RUN_FILE)).map_err(|e| StreamError::Io(e.to_string()))?;
        let run = RunSummary::from_json(&run_doc).map_err(StreamError::Manifest)?;
        crate::driver::check_shard_count(run.shards)
            .map_err(|e| StreamError::Manifest(format!("run.json: {e}")))?;
        if run.format != OutputFormat::Csr {
            return Err(StreamError::Config(format!(
                "{}: run format is {:?}; only csr shards are queryable in place \
                 (regenerate with --format csr)",
                dir.display(),
                run.format.as_str()
            )));
        }
        let num_vertices = run.n_a.checked_mul(run.n_b).ok_or_else(|| {
            StreamError::Manifest(format!(
                "run.json: n_A·n_B = {}·{} overflows u64",
                run.n_a, run.n_b
            ))
        })?;

        let mut shards = Vec::with_capacity(run.shards);
        let mut next_vertex = 0u64;
        let mut total_entries = 0u128;
        for index in 0..run.shards {
            let manifest = load_manifest(dir, index)?;
            if manifest.shard != index {
                return Err(StreamError::Shard(
                    index,
                    format!("manifest says shard {}", manifest.shard),
                ));
            }
            if manifest.format != OutputFormat::Csr {
                return Err(StreamError::Shard(
                    index,
                    format!(
                        "manifest format is {}, run is csr",
                        manifest.format.as_str()
                    ),
                ));
            }
            if manifest.vertices.start != next_vertex {
                return Err(StreamError::Shard(
                    index,
                    format!(
                        "vertex range starts at {}, previous shard ended at {next_vertex}",
                        manifest.vertices.start
                    ),
                ));
            }
            next_vertex = manifest.vertices.end;
            total_entries += manifest.entries;

            let name = manifest
                .file
                .as_deref()
                .ok_or_else(|| StreamError::Shard(index, "csr shard has no file".into()))?;
            let path = dir.join(name);
            let reader =
                CsrReader::open(&path).map_err(|e| StreamError::Shard(index, e.to_string()))?;
            if reader.vertex_lo() != manifest.vertices.start
                || reader.num_rows() != manifest.vertices.end - manifest.vertices.start
                || u128::from(reader.nnz()) != manifest.entries
            {
                return Err(StreamError::Shard(
                    index,
                    format!("{name}: mapped header disagrees with manifest"),
                ));
            }
            if std::fs::metadata(&path).map(|md| md.len()).ok() != Some(manifest.file_bytes) {
                return Err(StreamError::Shard(
                    index,
                    format!("{name}: size disagrees with manifest file_bytes"),
                ));
            }
            if verify {
                let hash = StreamHash::of(reader.entries());
                if hash != manifest.hash {
                    return Err(StreamError::Shard(
                        index,
                        format!("{name}: content checksum mismatch"),
                    ));
                }
            }
            shards.push(OpenShard { manifest, reader });
        }
        if next_vertex != num_vertices {
            return Err(StreamError::Manifest(format!(
                "shard vertex ranges end at {next_vertex}, product has {num_vertices} vertices"
            )));
        }
        if total_entries != run.total_entries {
            return Err(StreamError::Manifest(format!(
                "shard entries sum to {total_entries}, run.json says {}",
                run.total_entries
            )));
        }
        Ok(ShardSet {
            dir: dir.to_path_buf(),
            run,
            shards,
            num_vertices,
        })
    }

    /// The run directory this set was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run summary (`run.json`).
    pub fn run(&self) -> &RunSummary {
        &self.run
    }

    /// Product vertex count `n_C = n_A·n_B`.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Total adjacency entries across all shards (`nnz(A)·nnz(B)`).
    pub fn total_entries(&self) -> u128 {
        self.run.total_entries
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total mapped artifact bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.manifest.file_bytes).sum()
    }

    /// The opened shards, in index order.
    pub fn shards(&self) -> &[OpenShard] {
        &self.shards
    }

    /// Route a product vertex to the index of the shard owning its row,
    /// or `None` if `v` lies outside every shard's vertex range.
    ///
    /// Shard vertex ranges are contiguous and ascending (they tile
    /// `0..n_C`), so routing is a binary search over the range ends;
    /// empty shards (a plan with more shards than left-factor rows) are
    /// skipped naturally because no vertex satisfies their empty range.
    pub fn route(&self, v: u64) -> Option<usize> {
        let i = self
            .shards
            .partition_point(|s| s.manifest.vertices.end <= v);
        (i < self.shards.len() && self.shards[i].manifest.vertices.contains(&v)).then_some(i)
    }

    /// The adjacency row of product vertex `v` as a zero-copy slice into
    /// the owning shard's mapping (sorted ascending, self loop included),
    /// or `None` if `v` is outside every shard.
    pub fn row(&self, v: u64) -> Option<&[u64]> {
        let shard = self.route(v)?;
        self.shards[shard].reader.row(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{stream_product, StreamConfig};
    use kron::KronProduct;
    use kron_gen::deterministic::clique;
    use kron_graph::Graph;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kron_open_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn product() -> KronProduct {
        let a = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 4), (5, 5)]);
        let b = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 3), (0, 0)]);
        KronProduct::new(a, b)
    }

    fn streamed(dir: &Path, c: &KronProduct, shards: usize) {
        let mut cfg = StreamConfig::new(dir, OutputFormat::Csr);
        cfg.shards = shards;
        stream_product(c, &cfg).unwrap();
    }

    #[test]
    fn open_routes_every_vertex_to_its_row() {
        let dir = tmpdir("route");
        let c = product();
        streamed(&dir, &c, 3);
        let set = ShardSet::open_verified(&dir).unwrap();
        assert_eq!(set.num_shards(), 3);
        assert_eq!(set.num_vertices(), c.num_vertices());
        assert_eq!(set.total_entries(), c.nnz());
        assert!(set.mapped_bytes() > 0);
        for v in 0..c.num_vertices() {
            let shard = set.route(v).expect("in range");
            assert!(set.shards()[shard].manifest.vertices.contains(&v));
            assert_eq!(set.row(v).unwrap(), c.neighbors(v).as_slice(), "row {v}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vertex_outside_all_row_ranges_is_none_not_garbage() {
        let dir = tmpdir("oob");
        let c = product();
        streamed(&dir, &c, 2);
        let set = ShardSet::open(&dir).unwrap();
        let n = set.num_vertices();
        for v in [n, n + 1, u64::MAX] {
            assert_eq!(set.route(v), None);
            assert!(set.row(v).is_none());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_single_row_shards_open_and_serve() {
        // More shards than left-factor rows forces empty shards into the
        // plan; the remaining shards each cover a single row block.
        let dir = tmpdir("tiny");
        let a = Graph::from_edges(2, [(0, 1)]);
        let b = clique(3);
        let c = KronProduct::new(a, b);
        streamed(&dir, &c, 5);
        let set = ShardSet::open_verified(&dir).unwrap();
        assert_eq!(set.num_shards(), 5);
        let empty = set
            .shards()
            .iter()
            .filter(|s| s.manifest.vertices.is_empty())
            .count();
        assert!(empty > 0, "plan should contain empty shards");
        for v in 0..c.num_vertices() {
            assert_eq!(set.row(v).unwrap(), c.neighbors(v).as_slice());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_non_csr_runs() {
        let dir = tmpdir("edges_fmt");
        let c = product();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Edges);
        cfg.shards = 2;
        stream_product(&c, &cfg).unwrap();
        let err = ShardSet::open(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Config(_)), "{err}");
        assert!(err.to_string().contains("csr"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_verified_detects_tampered_columns() {
        let dir = tmpdir("tamper");
        let c = product();
        streamed(&dir, &c, 2);
        // flip a column id in shard 1's artifact body (past the offsets,
        // preserving size and offset structure)
        let m = load_manifest(&dir, 1).unwrap();
        let path = dir.join(m.file.as_deref().unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        let rows = (m.vertices.end - m.vertices.start) as usize;
        let col0 = 32 + 8 * (rows + 1);
        bytes[col0] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        // structural open cannot see it…
        assert!(ShardSet::open(&dir).is_ok());
        // …the verified open must
        let err = ShardSet::open_verified(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Shard(1, _)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_truncated_artifact_naming_the_file() {
        let dir = tmpdir("trunc");
        let c = product();
        streamed(&dir, &c, 2);
        let m = load_manifest(&dir, 0).unwrap();
        let name = m.file.as_deref().unwrap();
        let path = dir.join(name);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        let err = ShardSet::open(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Shard(0, _)), "{err}");
        assert!(
            err.to_string().contains(name),
            "error must name the file: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_errors_name_the_missing_manifest() {
        let dir = tmpdir("missing_manifest");
        let c = product();
        streamed(&dir, &c, 3);
        std::fs::remove_file(dir.join(crate::manifest_name(1))).unwrap();
        let err = ShardSet::open(&dir).unwrap_err();
        assert!(
            err.to_string().contains("shard_00001.json"),
            "error must name the manifest: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
