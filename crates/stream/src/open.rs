//! Opening a completed CSR run directory for in-place querying.
//!
//! [`ShardSet`] is the bridge between generation and serving: it reads
//! `run.json` and every shard manifest, memory-maps every CSR artifact
//! once, cross-checks each mapped header against its manifest, and then
//! routes product vertices to shards by the plan's contiguous vertex
//! ranges. After a successful open, every adjacency row of the product is
//! reachable as a [`RowRef`] — a zero-copy `&[u64]` slice for v1 (`csr`)
//! shards, a decoded-on-demand buffer for v2 (`csr2`) shards — without
//! loading the graph. Both formats travel every path above this module
//! identically; a run may even mix them per shard (the state a
//! `kron compact` conversion passes through).
//!
//! Two levels of validation are offered:
//!
//! * [`ShardSet::open`] — structural: JSON parses, the format is CSR, the
//!   shard vertex ranges tile `0..n_C` contiguously, every artifact's
//!   header (magic, `vertex_lo`, `num_rows`, `nnz`, offsets monotonicity)
//!   agrees with its manifest and file size, and the per-shard entry
//!   counts sum to `run.json`'s total. `O(shards + Σ num_rows)`.
//! * [`ShardSet::open_verified`] — additionally recomputes each shard's
//!   order-independent content checksum from the mapped columns and
//!   compares it to the manifest. `O(nnz)`, done exactly once at open;
//!   queries afterwards trust the mapping.
//!
//! A **subset open** ([`ShardSet::open_subset`] /
//! [`ShardSet::open_subset_verified`]) is the multi-node entry point:
//! one node of a cluster claims a contiguous shard range, memory-maps
//! only those artifacts, and still learns the *full* ownership map —
//! every manifest is read and validated (index, format, range
//! contiguity, entry totals), so routing a vertex to its owning shard
//! works for the whole product even though only the claimed shards are
//! resident. Artifacts of non-claimed shards need not exist on the node
//! at all (only the small JSON manifests must); a run directory whose
//! manifests do not cover the claimed range is rejected at open.

use crate::csr::{CsrMap, RowRef};
use crate::driver::{load_manifest, RUN_FILE};
use crate::manifest::{read_json, OutputFormat, RunSummary, ShardManifest, StreamHash};
use crate::StreamError;
use std::path::{Path, PathBuf};

/// One shard of an opened run: its manifest plus the live mapping.
pub struct OpenShard {
    /// The shard's manifest, as read from `shard_NNNNN.json`.
    pub manifest: ShardManifest,
    /// The mmap-backed reader over the shard's CSR artifact (either
    /// format, dispatched on the file magic).
    pub reader: CsrMap,
}

impl std::fmt::Debug for OpenShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenShard")
            .field("manifest", &self.manifest)
            .field("mapped_nnz", &self.reader.nnz())
            .finish()
    }
}

/// A CSR run directory, opened and validated once, with the claimed
/// shards memory-mapped and *every* product vertex routable to its
/// owning shard (resident here or not).
///
/// [`ShardSet::open`] validates structure only; [`ShardSet::open_verified`]
/// additionally recomputes every shard's content checksum once. The
/// `open_subset*` variants map only a claimed contiguous shard range —
/// the multi-node case — while still reading every manifest for the
/// ownership map.
pub struct ShardSet {
    dir: PathBuf,
    run: RunSummary,
    /// Product-vertex range of every shard of the run, by shard index —
    /// the ownership map. Always complete, even for subset opens.
    ranges: Vec<std::ops::Range<u64>>,
    /// The opened (claimed) shards, in index order: shard
    /// `subset.start + i` is `shards[i]`.
    shards: Vec<OpenShard>,
    /// The claimed shard range. `0..ranges.len()` for a full open.
    subset: std::ops::Range<usize>,
    num_vertices: u64,
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("dir", &self.dir)
            .field("shards", &self.ranges.len())
            .field("subset", &self.subset)
            .field("num_vertices", &self.num_vertices)
            .finish()
    }
}

impl ShardSet {
    /// Open a run directory with structural validation (headers, sizes,
    /// ranges — no content hashing).
    ///
    /// # Errors
    ///
    /// Fails when `run.json` or any manifest is missing or malformed, the
    /// run format is not CSR, the shard ranges do not tile `0..n_C`, or
    /// any artifact's mapped header disagrees with its manifest.
    pub fn open(dir: &Path) -> Result<ShardSet, StreamError> {
        Self::open_impl(dir, false, None)
    }

    /// Open a run directory and additionally verify every shard's content
    /// checksum against its manifest, once.
    ///
    /// # Errors
    ///
    /// Everything [`ShardSet::open`] rejects, plus any shard whose mapped
    /// contents fail the manifest's stream hash.
    pub fn open_verified(dir: &Path) -> Result<ShardSet, StreamError> {
        Self::open_impl(dir, true, None)
    }

    /// Open only the claimed contiguous shard range `subset`, with
    /// structural validation of the claimed artifacts. Every manifest of
    /// the run is still read and validated (the ownership map must be
    /// complete), but artifacts outside `subset` are neither opened nor
    /// required to exist on this node.
    ///
    /// # Errors
    ///
    /// Everything [`ShardSet::open`] rejects for the claimed shards, plus
    /// an empty claim or one not covered by the run's manifests
    /// (`subset.end > shards` or `subset.start ≥ subset.end`).
    pub fn open_subset(
        dir: &Path,
        subset: std::ops::Range<usize>,
    ) -> Result<ShardSet, StreamError> {
        Self::open_impl(dir, false, Some(subset))
    }

    /// Like [`ShardSet::open_subset`], additionally verifying the content
    /// checksum of every *claimed* shard once (non-claimed shards have no
    /// resident contents to hash).
    ///
    /// # Errors
    ///
    /// See [`ShardSet::open_subset`] and [`ShardSet::open_verified`].
    pub fn open_subset_verified(
        dir: &Path,
        subset: std::ops::Range<usize>,
    ) -> Result<ShardSet, StreamError> {
        Self::open_impl(dir, true, Some(subset))
    }

    fn open_impl(
        dir: &Path,
        verify: bool,
        subset: Option<std::ops::Range<usize>>,
    ) -> Result<ShardSet, StreamError> {
        let run_path = dir.join(RUN_FILE);
        let run_doc = read_json(&run_path).map_err(|e| StreamError::Io(e.to_string()))?;
        let run = RunSummary::from_json(&run_doc)
            .map_err(|e| StreamError::Manifest(format!("{}: {e}", run_path.display())))?;
        crate::driver::check_shard_count(run.shards)
            .map_err(|e| StreamError::Manifest(format!("run.json: {e}")))?;
        if !matches!(run.format, OutputFormat::Csr | OutputFormat::Csr2) {
            return Err(StreamError::Config(format!(
                "{}: run format is {:?}; only csr or csr2 shards are queryable in place \
                 (regenerate with --format csr2)",
                dir.display(),
                run.format.as_str()
            )));
        }
        let num_vertices = run.n_a.checked_mul(run.n_b).ok_or_else(|| {
            StreamError::Manifest(format!(
                "run.json: n_A·n_B = {}·{} overflows u64",
                run.n_a, run.n_b
            ))
        })?;

        let subset = match subset {
            None => 0..run.shards,
            Some(s) => {
                if s.start >= s.end {
                    return Err(StreamError::Config(format!(
                        "claimed shard range {}..{} is empty",
                        s.start, s.end
                    )));
                }
                if s.end > run.shards {
                    return Err(StreamError::Config(format!(
                        "claimed shard range {}..{} is not covered by this run's \
                         manifests (run has {} shards)",
                        s.start, s.end, run.shards
                    )));
                }
                s
            }
        };

        let mut ranges = Vec::with_capacity(run.shards);
        let mut shards = Vec::with_capacity(subset.end - subset.start);
        let mut next_vertex = 0u64;
        let mut total_entries = 0u128;
        for index in 0..run.shards {
            let manifest = load_manifest(dir, index)?;
            if manifest.shard != index {
                return Err(StreamError::Shard(
                    index,
                    format!("manifest says shard {}", manifest.shard),
                ));
            }
            // A shard may individually be csr or csr2 — a run mid-way
            // through `kron compact` mixes both, and each artifact's
            // reader is picked per shard — but never a non-CSR format.
            if !matches!(manifest.format, OutputFormat::Csr | OutputFormat::Csr2) {
                return Err(StreamError::Shard(
                    index,
                    format!(
                        "manifest format is {}, expected csr or csr2",
                        manifest.format.as_str()
                    ),
                ));
            }
            if manifest.vertices.start != next_vertex {
                return Err(StreamError::Shard(
                    index,
                    format!(
                        "vertex range starts at {}, previous shard ended at {next_vertex}",
                        manifest.vertices.start
                    ),
                ));
            }
            next_vertex = manifest.vertices.end;
            total_entries += manifest.entries;
            ranges.push(manifest.vertices.clone());

            // Non-claimed shards contribute their manifest to the
            // ownership map only; their artifacts may live on other nodes.
            if !subset.contains(&index) {
                continue;
            }
            let name = manifest
                .file
                .as_deref()
                .ok_or_else(|| StreamError::Shard(index, "csr shard has no file".into()))?;
            let path = dir.join(name);
            let reader =
                CsrMap::open(&path).map_err(|e| StreamError::Shard(index, e.to_string()))?;
            if reader.is_v2() != (manifest.format == OutputFormat::Csr2) {
                return Err(StreamError::Shard(
                    index,
                    format!(
                        "{name}: artifact magic says {}, manifest says {}",
                        if reader.is_v2() { "csr2" } else { "csr" },
                        manifest.format.as_str()
                    ),
                ));
            }
            if reader.vertex_lo() != manifest.vertices.start
                || reader.num_rows() != manifest.vertices.end - manifest.vertices.start
                || u128::from(reader.nnz()) != manifest.entries
            {
                return Err(StreamError::Shard(
                    index,
                    format!("{name}: mapped header disagrees with manifest"),
                ));
            }
            if std::fs::metadata(&path).map(|md| md.len()).ok() != Some(manifest.file_bytes) {
                return Err(StreamError::Shard(
                    index,
                    format!("{name}: size disagrees with manifest file_bytes"),
                ));
            }
            if verify {
                let hash = StreamHash::of(reader.entries());
                if hash != manifest.hash {
                    return Err(StreamError::Shard(
                        index,
                        format!("{name}: content checksum mismatch"),
                    ));
                }
            }
            shards.push(OpenShard { manifest, reader });
        }
        if next_vertex != num_vertices {
            return Err(StreamError::Manifest(format!(
                "shard vertex ranges end at {next_vertex}, product has {num_vertices} vertices"
            )));
        }
        if total_entries != run.total_entries {
            return Err(StreamError::Manifest(format!(
                "shard entries sum to {total_entries}, run.json says {}",
                run.total_entries
            )));
        }
        Ok(ShardSet {
            dir: dir.to_path_buf(),
            run,
            ranges,
            shards,
            subset,
            num_vertices,
        })
    }

    /// The run directory this set was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run summary (`run.json`).
    pub fn run(&self) -> &RunSummary {
        &self.run
    }

    /// Product vertex count `n_C = n_A·n_B`.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Total adjacency entries across all shards (`nnz(A)·nnz(B)`).
    pub fn total_entries(&self) -> u128 {
        self.run.total_entries
    }

    /// Number of shards **of the run** (the ownership map covers all of
    /// them, whether resident here or not).
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The claimed (resident) shard range. Equals `0..num_shards()` for
    /// a full open.
    pub fn subset(&self) -> std::ops::Range<usize> {
        self.subset.clone()
    }

    /// Whether every shard of the run is resident (a full open).
    pub fn is_complete(&self) -> bool {
        self.subset == (0..self.ranges.len())
    }

    /// Product-vertex range of shard `index` (resident or not), from the
    /// ownership map. `None` for an out-of-range shard index.
    pub fn shard_vertices(&self, index: usize) -> Option<std::ops::Range<u64>> {
        self.ranges.get(index).cloned()
    }

    /// Product-vertex span covered by the claimed subset,
    /// `[first claimed shard's lo, last claimed shard's hi)`.
    pub fn subset_vertices(&self) -> std::ops::Range<u64> {
        self.ranges[self.subset.start].start..self.ranges[self.subset.end - 1].end
    }

    /// Total mapped artifact bytes (claimed shards only).
    pub fn mapped_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.manifest.file_bytes).sum()
    }

    /// The opened (claimed) shards, in index order: entry `i` is shard
    /// `subset().start + i`. Prefer [`ShardSet::local`] to look one up by
    /// its run-wide shard index.
    pub fn shards(&self) -> &[OpenShard] {
        &self.shards
    }

    /// The opened shard with run-wide index `shard`, or `None` when that
    /// shard is outside the claimed subset (its rows live on another
    /// node).
    pub fn local(&self, shard: usize) -> Option<&OpenShard> {
        self.subset
            .contains(&shard)
            .then(|| &self.shards[shard - self.subset.start])
    }

    /// Route a product vertex to the run-wide index of the shard owning
    /// its row (resident here or not), or `None` if `v` lies outside
    /// every shard's vertex range.
    ///
    /// Shard vertex ranges are contiguous and ascending (they tile
    /// `0..n_C`), so routing is a binary search over the range ends;
    /// empty shards (a plan with more shards than left-factor rows) are
    /// skipped naturally because no vertex satisfies their empty range.
    pub fn route(&self, v: u64) -> Option<usize> {
        let i = self.ranges.partition_point(|r| r.end <= v);
        (i < self.ranges.len() && self.ranges[i].contains(&v)).then_some(i)
    }

    /// The adjacency row of product vertex `v` (sorted ascending, self
    /// loop included) as a [`RowRef`] — zero-copy into the owning shard's
    /// mapping for v1, decoded on demand for v2 — or `None` if `v` is
    /// outside every shard **or its shard is not resident in this set's
    /// subset**.
    pub fn row(&self, v: u64) -> Option<RowRef<'_>> {
        let shard = self.route(v)?;
        self.local(shard)?.reader.row(v)
    }

    /// Iterate `(vertex, row)` pairs of the resident shard with run-wide
    /// index `shard`, in ascending vertex order, or `None` when that
    /// shard is not in the claimed subset. Rows arrive as sorted
    /// [`RowRef`]s (zero-copy for v1 shards, decoded for v2).
    ///
    /// This is the shard-ordered traversal the whole-graph kernels in
    /// `kron-analyze` stream over: one call per shard of the plan, each
    /// walking its vertex range without touching the routing table.
    pub fn shard_rows(&self, shard: usize) -> Option<impl Iterator<Item = (u64, RowRef<'_>)> + '_> {
        self.local(shard).map(|o| o.reader.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{stream_product, StreamConfig};
    use kron::KronProduct;
    use kron_gen::deterministic::clique;
    use kron_graph::Graph;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kron_open_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn product() -> KronProduct {
        let a = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 4), (5, 5)]);
        let b = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 3), (0, 0)]);
        KronProduct::new(a, b)
    }

    fn streamed(dir: &Path, c: &KronProduct, shards: usize) {
        streamed_fmt(dir, c, shards, OutputFormat::Csr);
    }

    fn streamed_fmt(dir: &Path, c: &KronProduct, shards: usize, format: OutputFormat) {
        let mut cfg = StreamConfig::new(dir, format);
        cfg.shards = shards;
        stream_product(c, &cfg).unwrap();
    }

    #[test]
    fn open_routes_every_vertex_to_its_row() {
        let dir = tmpdir("route");
        let c = product();
        streamed(&dir, &c, 3);
        let set = ShardSet::open_verified(&dir).unwrap();
        assert_eq!(set.num_shards(), 3);
        assert_eq!(set.num_vertices(), c.num_vertices());
        assert_eq!(set.total_entries(), c.nnz());
        assert!(set.mapped_bytes() > 0);
        for v in 0..c.num_vertices() {
            let shard = set.route(v).expect("in range");
            assert!(set.shards()[shard].manifest.vertices.contains(&v));
            assert_eq!(&*set.row(v).unwrap(), c.neighbors(v).as_slice(), "row {v}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vertex_outside_all_row_ranges_is_none_not_garbage() {
        let dir = tmpdir("oob");
        let c = product();
        streamed(&dir, &c, 2);
        let set = ShardSet::open(&dir).unwrap();
        let n = set.num_vertices();
        for v in [n, n + 1, u64::MAX] {
            assert_eq!(set.route(v), None);
            assert!(set.row(v).is_none());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_single_row_shards_open_and_serve() {
        // More shards than left-factor rows forces empty shards into the
        // plan; the remaining shards each cover a single row block.
        let dir = tmpdir("tiny");
        let a = Graph::from_edges(2, [(0, 1)]);
        let b = clique(3);
        let c = KronProduct::new(a, b);
        streamed(&dir, &c, 5);
        let set = ShardSet::open_verified(&dir).unwrap();
        assert_eq!(set.num_shards(), 5);
        let empty = set
            .shards()
            .iter()
            .filter(|s| s.manifest.vertices.is_empty())
            .count();
        assert!(empty > 0, "plan should contain empty shards");
        for v in 0..c.num_vertices() {
            assert_eq!(&*set.row(v).unwrap(), c.neighbors(v).as_slice());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_non_csr_runs() {
        let dir = tmpdir("edges_fmt");
        let c = product();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Edges);
        cfg.shards = 2;
        stream_product(&c, &cfg).unwrap();
        let err = ShardSet::open(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Config(_)), "{err}");
        assert!(err.to_string().contains("csr"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_verified_detects_tampered_columns() {
        let dir = tmpdir("tamper");
        let c = product();
        streamed(&dir, &c, 2);
        // flip a column id in shard 1's artifact body (past the offsets,
        // preserving size and offset structure)
        let m = load_manifest(&dir, 1).unwrap();
        let path = dir.join(m.file.as_deref().unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        let rows = (m.vertices.end - m.vertices.start) as usize;
        let col0 = 32 + 8 * (rows + 1);
        bytes[col0] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        // structural open cannot see it…
        assert!(ShardSet::open(&dir).is_ok());
        // …the verified open must
        let err = ShardSet::open_verified(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Shard(1, _)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_truncated_artifact_naming_the_file() {
        let dir = tmpdir("trunc");
        let c = product();
        streamed(&dir, &c, 2);
        let m = load_manifest(&dir, 0).unwrap();
        let name = m.file.as_deref().unwrap();
        let path = dir.join(name);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        let err = ShardSet::open(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Shard(0, _)), "{err}");
        assert!(
            err.to_string().contains(name),
            "error must name the file: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subset_open_maps_only_claimed_shards_but_routes_everything() {
        let dir = tmpdir("subset");
        let c = product();
        streamed(&dir, &c, 4);
        let full = ShardSet::open(&dir).unwrap();
        assert!(full.is_complete());
        let set = ShardSet::open_subset_verified(&dir, 1..3).unwrap();
        assert!(!set.is_complete());
        assert_eq!(set.num_shards(), 4);
        assert_eq!(set.subset(), 1..3);
        assert_eq!(set.shards().len(), 2);
        assert_eq!(set.num_vertices(), c.num_vertices());
        let span = set.subset_vertices();
        for v in 0..c.num_vertices() {
            // the ownership map routes every vertex of the product…
            let shard = set.route(v).expect("in range");
            assert_eq!(shard, full.route(v).unwrap(), "route {v}");
            assert_eq!(
                set.shard_vertices(shard).unwrap(),
                full.shards()[shard].manifest.vertices
            );
            // …but only claimed rows are resident
            if span.contains(&v) {
                assert_eq!(&*set.row(v).unwrap(), c.neighbors(v).as_slice());
                assert!(set.local(shard).is_some());
            } else {
                assert!(set.row(v).is_none());
                assert!(set.local(shard).is_none());
            }
        }
        assert!(set.mapped_bytes() < full.mapped_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_rows_streams_every_resident_row_in_order() {
        let dir = tmpdir("shard_rows");
        let c = product();
        streamed(&dir, &c, 4);
        let set = ShardSet::open_subset(&dir, 1..3).unwrap();
        assert!(set.shard_rows(0).is_none(), "non-resident shard");
        assert!(set.shard_rows(3).is_none(), "non-resident shard");
        let mut seen = Vec::new();
        for shard in set.subset() {
            for (v, row) in set.shard_rows(shard).unwrap() {
                assert_eq!(&*row, c.neighbors(v).as_slice(), "vertex {v}");
                seen.push(v);
            }
        }
        let span = set.subset_vertices();
        assert_eq!(seen, (span.start..span.end).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subset_open_rejects_claims_the_manifests_do_not_cover() {
        let dir = tmpdir("subset_bad_claim");
        let c = product();
        streamed(&dir, &c, 3);
        let backwards = std::ops::Range { start: 5, end: 4 };
        for bad in [0..4, 3..5, 2..2, backwards] {
            let err = ShardSet::open_subset(&dir, bad.clone()).unwrap_err();
            assert!(matches!(err, StreamError::Config(_)), "{bad:?}: {err}");
        }
        // a claim needs every manifest (the ownership map is run-wide)…
        std::fs::remove_file(dir.join(crate::manifest_name(2))).unwrap();
        assert!(ShardSet::open_subset(&dir, 0..1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subset_open_tolerates_missing_non_claimed_artifacts_only() {
        let dir = tmpdir("subset_missing");
        let c = product();
        streamed(&dir, &c, 3);
        // a non-claimed artifact may live on another node entirely
        let other = load_manifest(&dir, 2).unwrap();
        std::fs::remove_file(dir.join(other.file.as_deref().unwrap())).unwrap();
        let set = ShardSet::open_subset_verified(&dir, 0..2).unwrap();
        for v in set.subset_vertices() {
            assert_eq!(&*set.row(v).unwrap(), c.neighbors(v).as_slice());
        }
        // …but a *claimed* artifact must be present and valid
        assert!(ShardSet::open_subset(&dir, 2..3).is_err());
        assert!(ShardSet::open_subset(&dir, 0..3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subset_open_verified_hashes_only_claimed_contents() {
        let dir = tmpdir("subset_verify");
        let c = product();
        streamed(&dir, &c, 3);
        // tamper shard 2's contents: a 0..2 claim cannot see it, a claim
        // covering shard 2 must reject it
        let m = load_manifest(&dir, 2).unwrap();
        let path = dir.join(m.file.as_deref().unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        let rows = (m.vertices.end - m.vertices.start) as usize;
        bytes[32 + 8 * (rows + 1)] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(ShardSet::open_subset_verified(&dir, 0..2).is_ok());
        let err = ShardSet::open_subset_verified(&dir, 1..3).unwrap_err();
        assert!(matches!(err, StreamError::Shard(2, _)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csr2_run_opens_verified_and_answers_like_csr() {
        let dir = tmpdir("v2_route");
        let dir1 = tmpdir("v2_route_twin");
        let c = product();
        streamed_fmt(&dir, &c, 3, OutputFormat::Csr2);
        streamed(&dir1, &c, 3);
        let set = ShardSet::open_verified(&dir).unwrap();
        let twin = ShardSet::open_verified(&dir1).unwrap();
        assert_eq!(set.num_shards(), 3);
        assert!(
            set.mapped_bytes() < twin.mapped_bytes(),
            "csr2 must be smaller: {} vs {}",
            set.mapped_bytes(),
            twin.mapped_bytes()
        );
        for (s, t) in set.shards().iter().zip(twin.shards()) {
            // identical entries ⇒ identical order-independent checksums
            assert_eq!(s.manifest.hash, t.manifest.hash);
            assert_eq!(s.manifest.format, OutputFormat::Csr2);
        }
        for v in 0..c.num_vertices() {
            assert_eq!(&*set.row(v).unwrap(), c.neighbors(v).as_slice(), "row {v}");
        }
        for shard in set.subset() {
            for ((v, row), (tv, trow)) in set
                .shard_rows(shard)
                .unwrap()
                .zip(twin.shard_rows(shard).unwrap())
            {
                assert_eq!(v, tv);
                assert_eq!(&*row, &*trow, "vertex {v}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir1).ok();
    }

    #[test]
    fn open_verified_detects_tampered_csr2_stream() {
        let dir = tmpdir("v2_tamper");
        let c = product();
        streamed_fmt(&dir, &c, 2, OutputFormat::Csr2);
        // flip a byte in shard 1's varint column stream (past the byte
        // offsets, preserving size and offset structure)
        let m = load_manifest(&dir, 1).unwrap();
        let path = dir.join(m.file.as_deref().unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        let rows = (m.vertices.end - m.vertices.start) as usize;
        let stream0 = 32 + 8 * (rows + 1);
        bytes[stream0] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            ShardSet::open(&dir).is_ok(),
            "structural open cannot see it"
        );
        let err = ShardSet::open_verified(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Shard(1, _)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_format_shards_open_but_renamed_artifacts_do_not() {
        // The state `kron compact` passes through: some shards already
        // csr2, the rest still csr. Both must serve.
        let dir = tmpdir("mixed");
        let dir2 = tmpdir("mixed_v2");
        let c = product();
        streamed(&dir, &c, 2);
        streamed_fmt(&dir2, &c, 2, OutputFormat::Csr2);
        // graft shard 1 (artifact + manifest) from the csr2 twin run
        let m2 = load_manifest(&dir2, 1).unwrap();
        let name2 = m2.file.as_deref().unwrap();
        std::fs::copy(dir2.join(name2), dir.join(name2)).unwrap();
        crate::manifest::write_json_atomic(&dir, &crate::manifest_name(1), &m2.to_json()).unwrap();
        let set = ShardSet::open_verified(&dir).unwrap();
        for v in 0..c.num_vertices() {
            assert_eq!(&*set.row(v).unwrap(), c.neighbors(v).as_slice(), "row {v}");
        }
        // …but a manifest whose format contradicts the artifact magic is
        // rejected, not silently misread
        let m1 = load_manifest(&dir, 1).unwrap();
        let mut lied = m1.clone();
        lied.format = OutputFormat::Csr;
        crate::manifest::write_json_atomic(&dir, &crate::manifest_name(1), &lied.to_json())
            .unwrap();
        let err = ShardSet::open(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Shard(1, _)), "{err}");
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn open_errors_name_the_missing_manifest() {
        let dir = tmpdir("missing_manifest");
        let c = product();
        streamed(&dir, &c, 3);
        std::fs::remove_file(dir.join(crate::manifest_name(1))).unwrap();
        let err = ShardSet::open(&dir).unwrap_err();
        assert!(
            err.to_string().contains("shard_00001.json"),
            "error must name the manifest: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
