//! Edge sinks: where a shard's stream of adjacency entries goes.
//!
//! The driver pushes entries in product row-major order (as produced by
//! `KronProduct::adjacency_entries_in_rows`); a sink persists or collects
//! them. Three implementations:
//!
//! * [`CountSink`] — statistics only, no artifact (generation-rate
//!   benchmarking and manifest-only validation runs);
//! * [`MemorySink`] — in-memory collector for tests and small products;
//! * [`EdgeListSink`] — buffered binary writer, fixed-width little-endian
//!   `u64` pairs (16 bytes per entry, no header);
//! * [`CsrSink`] — two-pass on-disk CSR: pass 1 writes the header and the
//!   closed-form row offsets, pass 2 appends column ids as entries stream
//!   through. See [`crate::csr`] for the layout.
//! * [`Csr2Sink`] — the varint delta-encoded v2 format: column gaps
//!   stream through a LEB128 encoder while a second handle trails behind
//!   filling in the byte-offset table as each row closes — still O(1)
//!   memory. See [`crate::csr`] for the layout.
//!
//! File-backed sinks write to `<name>.tmp` and rename on
//! [`EdgeSink::finish`], so a crashed run never leaves a plausible-looking
//! partial artifact — resume logic treats a missing final file as "redo".

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Destination of one shard's adjacency-entry stream.
pub trait EdgeSink {
    /// Accept one adjacency entry `(p, q)`; entries arrive in product
    /// row-major order.
    fn push(&mut self, p: u64, q: u64) -> io::Result<()>;

    /// Flush and durably finalize; returns `(file_name, bytes)` for
    /// file-backed sinks, `None` otherwise.
    fn finish(&mut self) -> io::Result<Option<(String, u64)>>;
}

/// Statistics-only sink: counts entries, persists nothing.
#[derive(Default)]
pub struct CountSink {
    /// Entries accepted so far.
    pub entries: u64,
}

impl EdgeSink for CountSink {
    fn push(&mut self, _p: u64, _q: u64) -> io::Result<()> {
        self.entries += 1;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<Option<(String, u64)>> {
        Ok(None)
    }
}

/// In-memory collector.
#[derive(Default)]
pub struct MemorySink {
    /// The collected entries, in arrival order.
    pub entries: Vec<(u64, u64)>,
}

impl EdgeSink for MemorySink {
    fn push(&mut self, p: u64, q: u64) -> io::Result<()> {
        self.entries.push((p, q));
        Ok(())
    }

    fn finish(&mut self) -> io::Result<Option<(String, u64)>> {
        Ok(None)
    }
}

/// Create `<dir>/<name>.tmp` for writing.
fn tmp_writer(dir: &Path, name: &str) -> io::Result<(PathBuf, BufWriter<File>)> {
    let tmp = dir.join(format!("{name}.tmp"));
    let file = File::create(&tmp)?;
    Ok((tmp, BufWriter::with_capacity(1 << 20, file)))
}

/// Rename `<name>.tmp` to `<name>` after flushing, returning final size.
fn commit(dir: &Path, name: &str, tmp: &Path, w: &mut BufWriter<File>) -> io::Result<u64> {
    w.flush()?;
    w.get_ref().sync_all()?;
    let final_path = dir.join(name);
    std::fs::rename(tmp, &final_path)?;
    Ok(std::fs::metadata(&final_path)?.len())
}

/// Buffered binary edge-list writer: each entry is 16 bytes, `p` then `q`,
/// both little-endian `u64`. No header; the manifest carries the counts.
pub struct EdgeListSink {
    dir: PathBuf,
    name: String,
    tmp: PathBuf,
    writer: BufWriter<File>,
    written: u64,
}

impl EdgeListSink {
    /// Open `<dir>/<name>.tmp` for streaming.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the artifact file.
    pub fn create(dir: &Path, name: &str) -> io::Result<Self> {
        let (tmp, writer) = tmp_writer(dir, name)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            name: name.to_string(),
            tmp,
            writer,
            written: 0,
        })
    }
}

impl EdgeSink for EdgeListSink {
    fn push(&mut self, p: u64, q: u64) -> io::Result<()> {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&p.to_le_bytes());
        buf[8..].copy_from_slice(&q.to_le_bytes());
        self.writer.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<Option<(String, u64)>> {
        let bytes = commit(&self.dir, &self.name, &self.tmp, &mut self.writer)?;
        debug_assert_eq!(bytes, self.written * 16);
        Ok(Some((self.name.clone(), bytes)))
    }
}

/// Two-pass on-disk CSR writer.
///
/// Pass 1 happens at construction: the header and the complete offset
/// array are written up front from the *closed-form* row lengths
/// (`rowlen_C(i·n_B + k) = rowlen_A(i)·rowlen_B(k)` — no scan of the
/// product needed). Pass 2 is the streaming pass: each pushed entry
/// appends its column id, with the row grouping validated against a
/// second walk of the same closed-form length iterator — **O(1) memory**
/// regardless of shard size; nothing but the file grows with the shard.
pub struct CsrSink<I: Iterator<Item = u64>> {
    dir: PathBuf,
    name: String,
    tmp: PathBuf,
    writer: BufWriter<File>,
    vertex_lo: u64,
    num_rows: u64,
    nnz: u64,
    /// Entries written so far (must end at `nnz`).
    written: u64,
    /// Lengths of the rows after the current one (validation source).
    lengths: I,
    /// Row currently being filled (local index; meaningless when
    /// `num_rows == 0`).
    current_row: u64,
    /// Entries the current row still accepts.
    remaining: u64,
}

impl<I: Iterator<Item = u64> + Clone> CsrSink<I> {
    /// Write header + offsets (pass 1) from closed-form row lengths.
    ///
    /// `vertex_lo` is the first product vertex of the shard; `row_lengths`
    /// yields the adjacency-row length of each vertex in the shard, in
    /// order. The iterator is walked three times (totals, offsets,
    /// streaming validation) — closed-form generators make each walk
    /// cheap, and no per-row state is ever buffered in memory.
    pub fn create(
        dir: &Path,
        name: &str,
        vertex_lo: u64,
        row_lengths: I,
    ) -> io::Result<CsrSink<I>> {
        let (tmp, mut writer) = tmp_writer(dir, name)?;
        // pass over the lengths once for the header totals…
        let (mut num_rows, mut nnz) = (0u64, 0u64);
        for len in row_lengths.clone() {
            num_rows += 1;
            nnz = nnz
                .checked_add(len)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "shard nnz > u64"))?;
        }
        writer.write_all(crate::csr::MAGIC)?;
        writer.write_all(&vertex_lo.to_le_bytes())?;
        writer.write_all(&num_rows.to_le_bytes())?;
        writer.write_all(&nnz.to_le_bytes())?;
        // …and again to stream the prefix sums straight to disk.
        let mut acc = 0u64;
        writer.write_all(&acc.to_le_bytes())?;
        for len in row_lengths.clone() {
            acc += len;
            writer.write_all(&acc.to_le_bytes())?;
        }
        let mut lengths = row_lengths;
        let remaining = lengths.next().unwrap_or(0);
        Ok(CsrSink {
            dir: dir.to_path_buf(),
            name: name.to_string(),
            tmp,
            writer,
            vertex_lo,
            num_rows,
            nnz,
            written: 0,
            lengths,
            current_row: 0,
            remaining,
        })
    }
}

impl<I: Iterator<Item = u64>> EdgeSink for CsrSink<I> {
    fn push(&mut self, p: u64, q: u64) -> io::Result<()> {
        let local = p.checked_sub(self.vertex_lo).filter(|&l| l < self.num_rows);
        let local = local.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("vertex {p} outside shard starting at {}", self.vertex_lo),
            )
        })?;
        // advance over rows already complete (possibly empty rows)
        while self.current_row < local && self.remaining == 0 {
            self.current_row += 1;
            self.remaining = self.lengths.next().unwrap_or(0);
        }
        if local != self.current_row || self.remaining == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "entry for vertex {p} out of row-major order or exceeds its closed-form row length"
                ),
            ));
        }
        self.writer.write_all(&q.to_le_bytes())?;
        self.remaining -= 1;
        self.written += 1;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<Option<(String, u64)>> {
        if self.written != self.nnz {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "CSR shard incomplete: wrote {} of {} entries",
                    self.written, self.nnz
                ),
            ));
        }
        let bytes = commit(&self.dir, &self.name, &self.tmp, &mut self.writer)?;
        debug_assert_eq!(
            Some(bytes),
            crate::csr::file_size_checked(self.num_rows, self.nnz)
        );
        Ok(Some((self.name.clone(), bytes)))
    }
}

/// Streaming writer for the v2 (varint delta-encoded) CSR format.
///
/// Pass 1 at construction writes the header and zero-fills the byte-offset
/// table from the closed-form row count. The streaming pass appends each
/// column as a LEB128 varint gap to the main handle while a **second**
/// handle, parked at the offset table, fills in the real byte offsets as
/// each row closes — so like [`CsrSink`] the writer holds O(1) memory no
/// matter how many rows the shard has. Columns within a row must arrive
/// strictly ascending (the format stores gaps); the generator's row-major
/// sorted stream satisfies this by construction.
pub struct Csr2Sink<I: Iterator<Item = u64>> {
    dir: PathBuf,
    name: String,
    tmp: PathBuf,
    /// Appends the column stream past the offset table.
    writer: BufWriter<File>,
    /// Trails behind, overwriting the zero-filled offset table.
    offsets: BufWriter<File>,
    vertex_lo: u64,
    num_rows: u64,
    nnz: u64,
    /// Entries written so far (must end at `nnz`).
    written: u64,
    /// Lengths of the rows after the current one (validation source).
    lengths: I,
    /// Row currently being filled (local index; meaningless when
    /// `num_rows == 0`).
    current_row: u64,
    /// Entries the current row still accepts.
    remaining: u64,
    /// Column-stream bytes emitted so far (the next row boundary).
    stream_bytes: u64,
    /// Last column written to the current row, if any.
    prev_col: Option<u64>,
}

impl<I: Iterator<Item = u64> + Clone> Csr2Sink<I> {
    /// Write header + zeroed offset table (pass 1) and open the trailing
    /// offset handle. Same contract as [`CsrSink::create`]: `row_lengths`
    /// yields closed-form row lengths and is walked three times.
    pub fn create(
        dir: &Path,
        name: &str,
        vertex_lo: u64,
        row_lengths: I,
    ) -> io::Result<Csr2Sink<I>> {
        let (tmp, mut writer) = tmp_writer(dir, name)?;
        let (mut num_rows, mut nnz) = (0u64, 0u64);
        for len in row_lengths.clone() {
            num_rows += 1;
            nnz = nnz
                .checked_add(len)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "shard nnz > u64"))?;
        }
        writer.write_all(crate::csr::MAGIC2)?;
        writer.write_all(&vertex_lo.to_le_bytes())?;
        writer.write_all(&num_rows.to_le_bytes())?;
        writer.write_all(&nnz.to_le_bytes())?;
        for _ in 0..=num_rows {
            writer.write_all(&0u64.to_le_bytes())?;
        }
        // The main handle must be fully flushed before the trailing
        // offset handle starts overwriting the table, or a late flush of
        // buffered zeros could clobber real offsets.
        writer.flush()?;
        let mut offsets_file = std::fs::OpenOptions::new().write(true).open(&tmp)?;
        offsets_file.seek(SeekFrom::Start(crate::csr::HEADER))?;
        let mut offsets = BufWriter::with_capacity(1 << 16, offsets_file);
        offsets.write_all(&0u64.to_le_bytes())?; // offsets[0]
        let mut lengths = row_lengths;
        let remaining = lengths.next().unwrap_or(0);
        Ok(Csr2Sink {
            dir: dir.to_path_buf(),
            name: name.to_string(),
            tmp,
            writer,
            offsets,
            vertex_lo,
            num_rows,
            nnz,
            written: 0,
            lengths,
            current_row: 0,
            remaining,
            stream_bytes: 0,
            prev_col: None,
        })
    }
}

impl<I: Iterator<Item = u64>> EdgeSink for Csr2Sink<I> {
    fn push(&mut self, p: u64, q: u64) -> io::Result<()> {
        let local = p.checked_sub(self.vertex_lo).filter(|&l| l < self.num_rows);
        let local = local.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("vertex {p} outside shard starting at {}", self.vertex_lo),
            )
        })?;
        // advance over rows already complete (possibly empty rows)
        while self.current_row < local && self.remaining == 0 {
            self.offsets.write_all(&self.stream_bytes.to_le_bytes())?;
            self.prev_col = None;
            self.current_row += 1;
            self.remaining = self.lengths.next().unwrap_or(0);
        }
        if local != self.current_row || self.remaining == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "entry for vertex {p} out of row-major order or exceeds its closed-form row length"
                ),
            ));
        }
        let gap = match self.prev_col {
            None => q,
            Some(prev) if q > prev => q - prev,
            Some(prev) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "columns of vertex {p} not strictly ascending ({q} after {prev}); \
                         csr2 stores gaps and requires sorted rows"
                    ),
                ));
            }
        };
        let mut buf = [0u8; 10];
        let mut len = 0;
        let mut x = gap;
        while x >= 0x80 {
            buf[len] = (x as u8 & 0x7f) | 0x80;
            len += 1;
            x >>= 7;
        }
        buf[len] = x as u8;
        len += 1;
        self.writer.write_all(&buf[..len])?;
        self.stream_bytes += len as u64;
        self.prev_col = Some(q);
        self.remaining -= 1;
        self.written += 1;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<Option<(String, u64)>> {
        if self.written != self.nnz {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "CSR shard incomplete: wrote {} of {} entries",
                    self.written, self.nnz
                ),
            ));
        }
        // close every remaining row (all empty once nnz entries landed)
        let open_rows = if self.num_rows == 0 {
            0
        } else {
            self.num_rows - self.current_row
        };
        for _ in 0..open_rows {
            self.offsets.write_all(&self.stream_bytes.to_le_bytes())?;
        }
        self.offsets.flush()?;
        self.offsets.get_ref().sync_all()?;
        let bytes = commit(&self.dir, &self.name, &self.tmp, &mut self.writer)?;
        debug_assert_eq!(
            Some(bytes),
            crate::csr::file_size2_checked(self.num_rows, self.stream_bytes)
        );
        Ok(Some((self.name.clone(), bytes)))
    }
}
