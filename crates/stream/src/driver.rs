//! The shard driver: run a plan's shards concurrently, producing durable
//! artifacts + manifests, with resume support.

use crate::manifest::{
    manifest_name, read_json, write_json_atomic, OutputFormat, RunSummary, ShardManifest,
    StreamHash,
};
use crate::plan::{ShardPlan, ShardSpec};
use crate::sink::{CountSink, Csr2Sink, CsrSink, EdgeListSink, EdgeSink};
use crate::StreamError;
use kron::KronProduct;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration of a stream run.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Output directory (created if missing).
    pub out_dir: PathBuf,
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Artifact format.
    pub format: OutputFormat,
    /// Worker threads; 0 means available parallelism.
    pub threads: usize,
    /// Skip shards whose manifest already exists and validates.
    ///
    /// The check is rsync-style quick: manifest statistics against the
    /// closed form plus artifact size — O(1) per shard, no content read.
    /// Bit-level corruption in a same-size artifact is the job of
    /// [`crate::verify_shards`]; delete the artifact it flags and resume.
    pub resume: bool,
}

impl StreamConfig {
    /// A config writing `format` artifacts into `out_dir` with defaults
    /// (8 shards, auto threads, no resume).
    pub fn new(out_dir: impl Into<PathBuf>, format: OutputFormat) -> Self {
        Self {
            out_dir: out_dir.into(),
            shards: 8,
            format,
            threads: 0,
            resume: false,
        }
    }
}

/// Factor edge-list file names inside a run directory.
pub const FACTOR_A_FILE: &str = "factor_a.tsv";
/// Right-factor edge-list file name inside a run directory.
pub const FACTOR_B_FILE: &str = "factor_b.tsv";
/// Run summary file name inside a run directory.
pub const RUN_FILE: &str = "run.json";

/// Stream one shard through a sink, computing observed statistics, and
/// return its manifest. Exposed for tests and benchmarks; the driver calls
/// this per shard.
///
/// # Errors
///
/// [`StreamError::Shard`] when the sink fails or the observed shard
/// statistics disagree with the closed forms.
pub fn run_shard(
    product: &KronProduct,
    spec: &ShardSpec,
    format: OutputFormat,
    sink: &mut dyn EdgeSink,
) -> Result<ShardManifest, StreamError> {
    let expect = &spec.stats;
    let mut hash = StreamHash::default();
    let mut entries = 0u128;
    let mut self_loops = 0u128;
    for (p, q) in product.adjacency_entries_in_rows(expect.rows.clone()) {
        hash.update(p, q);
        entries += 1;
        self_loops += u128::from(p == q);
        sink.push(p, q)
            .map_err(|e| StreamError::Shard(spec.index, e.to_string()))?;
    }
    let artifact = sink
        .finish()
        .map_err(|e| StreamError::Shard(spec.index, e.to_string()))?;
    // Observed stream vs closed form — a disagreement here means the
    // generator itself is broken; fail loudly rather than persist it.
    if entries != expect.nnz || self_loops != expect.self_loops {
        return Err(StreamError::Shard(
            spec.index,
            format!(
                "observed {entries} entries / {self_loops} loops, closed form says {} / {}",
                expect.nnz, expect.self_loops
            ),
        ));
    }
    let (file, file_bytes) = match artifact {
        Some((name, bytes)) => (Some(name), bytes),
        None => (None, 0),
    };
    Ok(ShardManifest {
        shard: spec.index,
        rows: expect.rows.clone(),
        vertices: expect.vertices.clone(),
        format,
        file,
        file_bytes,
        entries,
        self_loops,
        degree_sum: expect.degree_sum,
        triangle_sum: expect.triangle_sum,
        hash,
    })
}

/// Build the configured sink for one shard.
fn make_sink<'a>(
    dir: &Path,
    spec: &ShardSpec,
    format: OutputFormat,
    product: &'a KronProduct,
) -> Result<Box<dyn EdgeSink + 'a>, StreamError> {
    // A format with no artifact name ([`OutputFormat::Count`]) must never
    // reach the file-backed arms; surface a mismatch as a shard error
    // rather than panicking, so a refactored call path degrades to a
    // failed run instead of an abort.
    let named = || {
        format.artifact_name(spec.index).ok_or_else(|| {
            StreamError::Shard(
                spec.index,
                format!("format {:?} has no artifact file name", format.as_str()),
            )
        })
    };
    let io_err = |e: std::io::Error| StreamError::Shard(spec.index, e.to_string());
    Ok(match format {
        OutputFormat::Count => Box::new(CountSink::default()),
        OutputFormat::Edges => Box::new(EdgeListSink::create(dir, &named()?).map_err(io_err)?),
        OutputFormat::Csr => Box::new(
            CsrSink::create(
                dir,
                &named()?,
                spec.stats.vertices.start,
                product.row_lengths_in_rows(spec.stats.rows.clone()),
            )
            .map_err(io_err)?,
        ),
        OutputFormat::Csr2 => Box::new(
            Csr2Sink::create(
                dir,
                &named()?,
                spec.stats.vertices.start,
                product.row_lengths_in_rows(spec.stats.rows.clone()),
            )
            .map_err(io_err)?,
        ),
    })
}

/// Validate a shard count from config or a run directory.
pub(crate) fn check_shard_count(shards: usize) -> Result<(), String> {
    if shards == 0 {
        Err("shards must be ≥ 1".into())
    } else if shards > crate::plan::MAX_SHARDS {
        Err(format!(
            "shard count {shards} exceeds the sanity bound {}",
            crate::plan::MAX_SHARDS
        ))
    } else {
        Ok(())
    }
}

/// Remove shard files a previous run left behind that the current plan
/// will not overwrite: any `shard_NNNNN.*` with index ≥ `shards`, any
/// artifact whose extension doesn't match the current format, and stray
/// `.tmp` leftovers. Without this, re-running into the same directory
/// with fewer shards (or another format) leaves stale artifacts that a
/// `shard_*`-globbing consumer would happily mix with the new plan's.
fn remove_stale_shard_files(
    dir: &Path,
    shards: usize,
    format: OutputFormat,
) -> std::io::Result<()> {
    let keep_ext = match format {
        OutputFormat::Edges => Some("edges"),
        OutputFormat::Csr => Some("csr"),
        OutputFormat::Csr2 => Some("csr2"),
        OutputFormat::Count => None,
    };
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("shard_") else {
            continue;
        };
        let Some((index, ext)) = rest.split_once('.') else {
            continue;
        };
        let Ok(index) = index.parse::<usize>() else {
            continue;
        };
        let stale = match ext {
            "json" => index >= shards,
            "edges" | "csr" | "csr2" => index >= shards || keep_ext != Some(ext),
            _ if ext.ends_with("tmp") => true,
            _ => false,
        };
        if stale {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Whether a completed, valid manifest + artifact already exist for the
/// shard (the resume check).
fn shard_is_complete(dir: &Path, spec: &ShardSpec, format: OutputFormat) -> bool {
    let path = dir.join(manifest_name(spec.index));
    let Ok(doc) = read_json(&path) else {
        return false;
    };
    let Ok(m) = ShardManifest::from_json(&doc) else {
        return false;
    };
    if m.format != format || m.matches_stats(&spec.stats).is_err() {
        return false;
    }
    match &m.file {
        None => format == OutputFormat::Count,
        Some(name) => {
            std::fs::metadata(dir.join(name)).map(|md| md.len()).ok() == Some(m.file_bytes)
        }
    }
}

/// Load a shard's manifest from a run directory.
///
/// # Errors
///
/// [`StreamError::Io`] when the manifest file is missing or unreadable
/// (the message names the path), [`StreamError::Manifest`] when it does
/// not parse.
pub fn load_manifest(dir: &Path, shard: usize) -> Result<ShardManifest, StreamError> {
    let path = dir.join(manifest_name(shard));
    let doc = read_json(&path).map_err(|e| StreamError::Io(e.to_string()))?;
    ShardManifest::from_json(&doc)
        .map_err(|e| StreamError::Manifest(format!("{}: {e}", path.display())))
}

/// Generate all shards of `product` into `cfg.out_dir`.
///
/// Writes per-shard artifacts + manifests, copies of both factor edge
/// lists (so the run is self-describing and re-verifiable), and a
/// `run.json` summary. Shards run concurrently on `cfg.threads` workers;
/// with `cfg.resume`, shards whose manifest already validates are skipped.
///
/// # Errors
///
/// [`StreamError::Config`] for an invalid configuration (zero/too many
/// shards), [`StreamError::Io`] for directory/summary I/O failures, and
/// [`StreamError::Shard`] naming the first shard whose generation or
/// validation failed.
pub fn stream_product(
    product: &KronProduct,
    cfg: &StreamConfig,
) -> Result<RunSummary, StreamError> {
    check_shard_count(cfg.shards).map_err(StreamError::Config)?;
    let dir = &cfg.out_dir;
    std::fs::create_dir_all(dir).map_err(|e| StreamError::Io(e.to_string()))?;
    remove_stale_shard_files(dir, cfg.shards, cfg.format)
        .map_err(|e| StreamError::Io(e.to_string()))?;
    let (a, b) = product.factors();
    for (file, g) in [(FACTOR_A_FILE, a), (FACTOR_B_FILE, b)] {
        kron_graph::write_edge_list_path(g, dir.join(file))
            .map_err(|e| StreamError::Io(format!("writing {file}: {e}")))?;
    }

    let plan = ShardPlan::new(product, cfg.shards);
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.threads
    }
    .min(cfg.shards)
    .max(1);

    let t0 = std::time::Instant::now();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let resumed = AtomicUsize::new(0);
    let errors: Mutex<Vec<StreamError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = plan.get(i) else { break };
                if cfg.resume && shard_is_complete(dir, spec, cfg.format) {
                    resumed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let result = make_sink(dir, spec, cfg.format, product)
                    .and_then(|mut sink| run_shard(product, spec, cfg.format, sink.as_mut()))
                    .and_then(|m| {
                        write_json_atomic(dir, &manifest_name(spec.index), &m.to_json())
                            .map_err(|e| StreamError::Shard(spec.index, e.to_string()))
                    });
                if let Err(e) = result {
                    errors.lock().unwrap().push(e);
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
            });
        }
    });
    if let Some(e) = errors.into_inner().unwrap().into_iter().next() {
        return Err(e);
    }

    // Aggregate manifests into the run summary; totals must reproduce the
    // closed-form global statistics exactly.
    let mut total_entries = 0u128;
    let mut total_triangle_sum = 0u128;
    for spec in plan.iter() {
        let m = load_manifest(dir, spec.index)?;
        m.matches_stats(&spec.stats)
            .map_err(StreamError::Manifest)?;
        total_entries += m.entries;
        total_triangle_sum += m.triangle_sum;
    }
    if total_entries != product.nnz() {
        return Err(StreamError::Manifest(format!(
            "shard entry counts sum to {total_entries}, product nnz is {}",
            product.nnz()
        )));
    }
    if total_triangle_sum != product.total_triangle_participation() {
        return Err(StreamError::Manifest(format!(
            "shard triangle sums total {total_triangle_sum}, closed form says {}",
            product.total_triangle_participation()
        )));
    }

    let summary = RunSummary {
        shards: cfg.shards,
        format: cfg.format,
        n_a: a.num_vertices() as u64,
        n_b: b.num_vertices() as u64,
        nnz_a: a.nnz(),
        nnz_b: b.nnz(),
        total_entries,
        total_triangle_sum,
        factor_a: FACTOR_A_FILE.into(),
        factor_b: FACTOR_B_FILE.into(),
        threads,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        resumed_shards: resumed.into_inner(),
    };
    write_json_atomic(dir, RUN_FILE, &summary.to_json())
        .map_err(|e| StreamError::Io(e.to_string()))?;
    Ok(summary)
}
