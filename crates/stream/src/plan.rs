//! The shard plan: how the product's edge space is cut into
//! communication-free units of work.

use kron::{KronProduct, RowBlockStats};

/// One shard: a contiguous left-factor row block plus its closed-form
/// expected statistics (the checksums the generated artifact must match).
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Shard index within the plan.
    pub index: usize,
    /// Closed-form expectation for this shard's row block.
    pub stats: RowBlockStats,
}

/// Most shards any run or run directory may declare — a sanity bound so
/// a corrupt `run.json` cannot make the verifier allocate per-shard
/// state without limit.
pub const MAX_SHARDS: usize = 1 << 20;

/// A partition of the product edge space into contiguous left-factor row
/// blocks, balanced by entry count (`nnz`), not row count.
///
/// Every adjacency entry `(p, q)` of the product belongs to exactly one
/// shard — the one owning `p`'s left-factor row — so concatenating all
/// shard streams reproduces the full generator loop exactly.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: Vec<ShardSpec>,
}

impl ShardPlan {
    /// Plan `shards` nnz-balanced shards for the product.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(product: &KronProduct, shards: usize) -> Self {
        let blocks = product.partition_rows_by_nnz(shards);
        Self {
            shards: blocks
                .into_iter()
                .enumerate()
                .map(|(index, rows)| ShardSpec {
                    index,
                    stats: product.row_block_stats(rows),
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan is empty (never: `new` requires ≥ 1 shard).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shards in index order.
    pub fn iter(&self) -> impl Iterator<Item = &ShardSpec> {
        self.shards.iter()
    }

    /// One shard by index.
    pub fn get(&self, index: usize) -> Option<&ShardSpec> {
        self.shards.get(index)
    }

    /// Total entries across all shards — equals `nnz(A)·nnz(B)`.
    pub fn total_entries(&self) -> u128 {
        self.shards.iter().map(|s| s.stats.nnz).sum()
    }

    /// The heaviest shard's entry count (the parallel makespan bound).
    pub fn max_shard_entries(&self) -> u128 {
        self.shards.iter().map(|s| s.stats.nnz).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_gen::deterministic::clique;
    use kron_graph::Graph;

    #[test]
    fn plan_covers_edge_space_exactly() {
        let c = KronProduct::new(clique(9), clique(7));
        for n in [1, 3, 8, 9, 20] {
            let plan = ShardPlan::new(&c, n);
            assert_eq!(plan.len(), n);
            assert_eq!(plan.total_entries(), c.nnz());
            assert!(plan.max_shard_entries() <= c.nnz());
            let mut next_row = 0u32;
            for (i, s) in plan.iter().enumerate() {
                assert_eq!(s.index, i);
                assert_eq!(s.stats.rows.start, next_row);
                next_row = s.stats.rows.end;
            }
            assert_eq!(next_row, 9);
        }
    }

    #[test]
    fn balance_is_reasonable_on_skewed_factors() {
        // hub-heavy left factor: star with a fat hub row
        let star = Graph::from_edges(101, (1..101u32).map(|v| (0, v)));
        let c = KronProduct::new(star, clique(5));
        let plan = ShardPlan::new(&c, 4);
        // perfect balance is impossible (hub row is half the nnz), but no
        // shard may exceed hub + fair share
        let fair = c.nnz() / 4;
        assert!(plan.max_shard_entries() <= fair + 100 * 20 + 100 * 20);
        assert_eq!(plan.total_entries(), c.nnz());
    }
}
