//! The on-disk CSR shard formats and their mmap-backed readers.
//!
//! **v1** (`csr`) layout, all integers little-endian `u64`:
//!
//! ```text
//! offset  size            field
//! 0       8               magic  b"KRONCSR1"
//! 8       8               vertex_lo — first product vertex of the shard
//! 16      8               num_rows  — product vertices covered
//! 24      8               nnz       — adjacency entries in the shard
//! 32      8·(num_rows+1)  offsets   — local prefix sums, offsets[0] = 0
//! ...     8·nnz           cols      — column (neighbor) vertex ids
//! ```
//!
//! Row `r` (product vertex `vertex_lo + r`) owns
//! `cols[offsets[r]..offsets[r+1]]`, sorted ascending. The header starts
//! every section at an 8-byte boundary, so a page-aligned mapping exposes
//! both arrays as `&[u64]` without copying.
//!
//! **v2** (`csr2`) keeps the 32-byte header (magic `b"KRONCSR2"`) and the
//! `num_rows + 1` `u64` offset array, but the offsets are **byte**
//! positions into a varint delta-encoded column stream that follows:
//! row `r` owns stream bytes `[offsets[r], offsets[r+1])`, holding its
//! first column as an absolute LEB128 varint and every later column as
//! the LEB128 gap to its predecessor (rows are strictly ascending, so
//! gaps are small and most columns fit in 1–2 bytes instead of 8).
//! [`Csr2Reader::row`] decodes a row on demand; [`CsrMap`] dispatches on
//! the magic so every caller handles both formats through one
//! [`RowRef`]-returning API. v1 stays readable forever.

use crate::mmap::{as_u64s, Mmap};
use std::fs::File;
use std::io;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

/// File magic, also the format version.
pub const MAGIC: &[u8; 8] = b"KRONCSR1";

/// File magic of the varint delta-encoded v2 format.
pub const MAGIC2: &[u8; 8] = b"KRONCSR2";

/// Header size in bytes.
pub const HEADER: u64 = 32;

/// Exact file size of a shard with the given dimensions, or `None` if
/// the dimensions are corrupt enough to overflow (an attacker- or
/// corruption-supplied header must not panic the reader).
///
/// This is the **only** size computation for the format: there is
/// deliberately no panicking variant, so header-derived dimensions can
/// never wrap or abort no matter which call path reaches them.
pub fn file_size_checked(num_rows: u64, nnz: u64) -> Option<u64> {
    let offsets = num_rows.checked_add(1)?.checked_mul(8)?;
    let cols = nnz.checked_mul(8)?;
    HEADER.checked_add(offsets)?.checked_add(cols)
}

/// Exact file size of a v2 shard with the given dimensions and column
/// stream length, or `None` on overflow. Same contract as
/// [`file_size_checked`]: the only size computation for the format, with
/// no panicking variant.
pub fn file_size2_checked(num_rows: u64, stream_bytes: u64) -> Option<u64> {
    let offsets = num_rows.checked_add(1)?.checked_mul(8)?;
    HEADER.checked_add(offsets)?.checked_add(stream_bytes)
}

/// Append `x` as an LEB128 varint (7 value bits per byte, high bit set
/// on every byte but the last). At most 10 bytes for a `u64`.
#[inline]
pub fn varint_push(mut x: u64, out: &mut Vec<u8>) {
    while x >= 0x80 {
        out.push((x as u8 & 0x7f) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Decode one LEB128 varint starting at `bytes[*pos]`, advancing `pos`
/// past it. `None` if the buffer ends mid-varint or the value overflows
/// a `u64` — corrupt input degrades to a short row, never a panic.
#[inline]
pub fn varint_read(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 63 && b > 1 {
            return None; // would overflow the 64th bit
        }
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encode a sorted row as the v2 column stream bytes: first column
/// absolute, every later column as the gap to its predecessor. This is
/// also the `GET /row` wire encoding (`enc=vd`).
pub fn encode_row_vd(row: &[u64], out: &mut Vec<u8>) {
    let mut prev = 0u64;
    for (i, &q) in row.iter().enumerate() {
        varint_push(if i == 0 { q } else { q - prev }, out);
        prev = q;
    }
}

/// Decode a v2 column stream back into columns. `false` if the bytes
/// are malformed (truncated varint or overflowing delta): the columns
/// decoded so far are kept, so corrupt input yields a deterministic
/// short row for checksums and cross-checks to flag, never a panic.
pub fn decode_row_vd(bytes: &[u8], out: &mut Vec<u64>) -> bool {
    let mut pos = 0usize;
    let mut prev = 0u64;
    let mut first = true;
    while pos < bytes.len() {
        let Some(delta) = varint_read(bytes, &mut pos) else {
            return false;
        };
        let q = if first {
            delta
        } else {
            match prev.checked_add(delta) {
                Some(q) => q,
                None => return false,
            }
        };
        first = false;
        out.push(q);
        prev = q;
    }
    true
}

/// Zero-copy reader over an on-disk CSR shard.
///
/// Opening validates the header against the file length and the offset
/// array's structure; row access is then slicing into the mapping.
pub struct CsrReader {
    map: Mmap,
    vertex_lo: u64,
    num_rows: u64,
    nnz: u64,
}

impl CsrReader {
    /// Map and validate a CSR shard file.
    ///
    /// # Errors
    ///
    /// `InvalidData` for a bad magic, a header that contradicts the file
    /// size (with overflow-checked arithmetic), or non-monotone offsets;
    /// any I/O error from opening or mapping the file.
    pub fn open(path: &Path) -> io::Result<CsrReader> {
        let file = File::open(path)?;
        let map = Mmap::map_readonly(&file)?;
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if map.len() < HEADER as usize {
            return Err(bad(format!("{}: truncated header", path.display())));
        }
        if &map[..8] != MAGIC {
            return Err(bad(format!(
                "{}: bad magic (not a KRONCSR1 file)",
                path.display()
            )));
        }
        let word = |i: usize| u64::from_le_bytes(map[8 * i..8 * i + 8].try_into().unwrap());
        let (vertex_lo, num_rows, nnz) = (word(1), word(2), word(3));
        let expect = file_size_checked(num_rows, nnz)
            .filter(|&sz| usize::try_from(sz).is_ok())
            .ok_or_else(|| {
                bad(format!(
                    "{}: header dimensions overflow ({num_rows} rows, {nnz} nnz)",
                    path.display()
                ))
            })?;
        if map.len() as u64 != expect {
            return Err(bad(format!(
                "{}: file is {} bytes, header implies {expect}",
                path.display(),
                map.len()
            )));
        }
        let reader = CsrReader {
            map,
            vertex_lo,
            num_rows,
            nnz,
        };
        let offsets = reader.offsets();
        if offsets[0] != 0 || offsets[num_rows as usize] != nnz {
            return Err(bad(format!(
                "{}: offset array endpoints corrupt",
                path.display()
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad(format!("{}: offsets not monotone", path.display())));
        }
        Ok(reader)
    }

    /// First product vertex of the shard.
    pub fn vertex_lo(&self) -> u64 {
        self.vertex_lo
    }

    /// Product vertices covered.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Adjacency entries stored.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// The local offset array (`num_rows + 1` entries), zero-copy.
    pub fn offsets(&self) -> &[u64] {
        let start = HEADER as usize;
        let end = start + 8 * (self.num_rows as usize + 1);
        as_u64s(&self.map[start..end])
    }

    /// The flat column array, zero-copy.
    pub fn cols(&self) -> &[u64] {
        let start = HEADER as usize + 8 * (self.num_rows as usize + 1);
        as_u64s(&self.map[start..])
    }

    /// The adjacency row of product vertex `p`, or `None` if `p` is
    /// outside the shard. Zero-copy slice into the mapping.
    pub fn row(&self, p: u64) -> Option<&[u64]> {
        let local = p.checked_sub(self.vertex_lo)?;
        if local >= self.num_rows {
            return None;
        }
        let offsets = self.offsets();
        let (lo, hi) = (
            offsets[local as usize] as usize,
            offsets[local as usize + 1] as usize,
        );
        Some(&self.cols()[lo..hi])
    }

    /// Iterate `(p, row)` pairs in ascending vertex order, one per
    /// covered product vertex. Each row is a zero-copy sorted slice into
    /// the mapping — the shard-ordered traversal whole-graph kernels
    /// stream over.
    pub fn rows(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        let offsets = self.offsets();
        let cols = self.cols();
        (0..self.num_rows as usize).map(move |r| {
            (
                self.vertex_lo + r as u64,
                &cols[offsets[r] as usize..offsets[r + 1] as usize],
            )
        })
    }

    /// Iterate all `(p, q)` entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let offsets = self.offsets();
        let cols = self.cols();
        (0..self.num_rows as usize).flat_map(move |r| {
            let p = self.vertex_lo + r as u64;
            cols[offsets[r] as usize..offsets[r + 1] as usize]
                .iter()
                .map(move |&q| (p, q))
        })
    }
}

/// Reader over a v2 (varint delta-encoded) CSR shard.
///
/// Opening validates the header, the byte-offset array's structure, and
/// the exact file length; [`Csr2Reader::row`] then decodes one row's
/// stream slice on demand. Content integrity (row lengths, sortedness,
/// checksums) is the job of `verify-shards` / checksum-verified opens,
/// exactly as for v1.
pub struct Csr2Reader {
    map: Mmap,
    vertex_lo: u64,
    num_rows: u64,
    nnz: u64,
}

impl Csr2Reader {
    /// Map and validate a v2 CSR shard file.
    ///
    /// # Errors
    ///
    /// `InvalidData` for a bad magic, a header or offset array that
    /// contradicts the file size (overflow-checked), or non-monotone
    /// byte offsets; any I/O error from opening or mapping the file.
    pub fn open(path: &Path) -> io::Result<Csr2Reader> {
        let file = File::open(path)?;
        let map = Mmap::map_readonly(&file)?;
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if map.len() < HEADER as usize {
            return Err(bad(format!("{}: truncated header", path.display())));
        }
        if &map[..8] != MAGIC2 {
            return Err(bad(format!(
                "{}: bad magic (not a KRONCSR2 file)",
                path.display()
            )));
        }
        let word = |i: usize| u64::from_le_bytes(map[8 * i..8 * i + 8].try_into().unwrap());
        let (vertex_lo, num_rows, nnz) = (word(1), word(2), word(3));
        let table_end = file_size2_checked(num_rows, 0)
            .filter(|&sz| usize::try_from(sz).is_ok())
            .ok_or_else(|| {
                bad(format!(
                    "{}: header dimensions overflow ({num_rows} rows, {nnz} nnz)",
                    path.display()
                ))
            })?;
        if (map.len() as u64) < table_end {
            return Err(bad(format!(
                "{}: file is {} bytes, too short for {num_rows} row offsets",
                path.display(),
                map.len()
            )));
        }
        let reader = Csr2Reader {
            map,
            vertex_lo,
            num_rows,
            nnz,
        };
        let offsets = reader.offsets();
        let stream_bytes = offsets[num_rows as usize];
        if offsets[0] != 0 {
            return Err(bad(format!(
                "{}: offset array endpoints corrupt",
                path.display()
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad(format!("{}: offsets not monotone", path.display())));
        }
        let expect = file_size2_checked(num_rows, stream_bytes)
            .filter(|&sz| usize::try_from(sz).is_ok())
            .ok_or_else(|| {
                bad(format!(
                    "{}: offset array overflows ({num_rows} rows, {stream_bytes} stream bytes)",
                    path.display()
                ))
            })?;
        if reader.map.len() as u64 != expect {
            return Err(bad(format!(
                "{}: file is {} bytes, header implies {expect}",
                path.display(),
                reader.map.len()
            )));
        }
        // Each stored entry takes at least one stream byte, so a stream
        // shorter than nnz bytes cannot hold the claimed entries.
        if stream_bytes < nnz {
            return Err(bad(format!(
                "{}: {stream_bytes}-byte column stream cannot hold {nnz} entries",
                path.display()
            )));
        }
        Ok(reader)
    }

    /// First product vertex of the shard.
    pub fn vertex_lo(&self) -> u64 {
        self.vertex_lo
    }

    /// Product vertices covered.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Adjacency entries stored.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// The byte-offset array (`num_rows + 1` entries), zero-copy.
    /// Offsets are relative to the column stream's start;
    /// `offsets[num_rows]` is the stream length.
    pub fn offsets(&self) -> &[u64] {
        let start = HEADER as usize;
        let end = start + 8 * (self.num_rows as usize + 1);
        as_u64s(&self.map[start..end])
    }

    /// The varint delta-encoded column stream, zero-copy.
    pub fn stream(&self) -> &[u8] {
        &self.map[HEADER as usize + 8 * (self.num_rows as usize + 1)..]
    }

    /// The still-encoded stream bytes of product vertex `p`'s row, or
    /// `None` if `p` is outside the shard. Zero-copy: this is what the
    /// `GET /row` `enc=vd` wire path serves without decoding.
    pub fn row_bytes(&self, p: u64) -> Option<&[u8]> {
        let local = p.checked_sub(self.vertex_lo)?;
        if local >= self.num_rows {
            return None;
        }
        let offsets = self.offsets();
        let (lo, hi) = (
            offsets[local as usize] as usize,
            offsets[local as usize + 1] as usize,
        );
        Some(&self.stream()[lo..hi])
    }

    /// The decoded adjacency row of product vertex `p`, or `None` if
    /// `p` is outside the shard.
    pub fn row(&self, p: u64) -> Option<Vec<u64>> {
        let bytes = self.row_bytes(p)?;
        let mut out = Vec::new();
        decode_row_vd(bytes, &mut out);
        Some(out)
    }

    /// Iterate `(p, row)` pairs in ascending vertex order, decoding one
    /// row at a time.
    pub fn rows(&self) -> impl Iterator<Item = (u64, Vec<u64>)> + '_ {
        (0..self.num_rows).map(move |r| {
            let p = self.vertex_lo + r;
            (p, self.row(p).expect("in-range row decodes"))
        })
    }

    /// Iterate all `(p, q)` entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.rows()
            .flat_map(|(p, row)| row.into_iter().map(move |q| (p, q)))
    }
}

/// A borrowed-or-decoded adjacency row, `Deref`ing to `&[u64]`.
///
/// v1 rows are zero-copy slices of the mapping; v2 rows are decoded into
/// an owned buffer. Every kernel above the reader is generic over
/// `Deref<Target = [u64]>`, so both travel the same paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowRef<'a> {
    /// A zero-copy slice into a v1 mapping.
    Mapped(&'a [u64]),
    /// A row decoded out of a v2 column stream.
    Decoded(Vec<u64>),
}

impl RowRef<'_> {
    /// The row as a plain slice.
    pub fn as_slice(&self) -> &[u64] {
        self
    }
}

impl std::ops::Deref for RowRef<'_> {
    type Target = [u64];

    #[inline]
    fn deref(&self) -> &[u64] {
        match self {
            RowRef::Mapped(s) => s,
            RowRef::Decoded(v) => v,
        }
    }
}

impl From<RowRef<'_>> for Arc<[u64]> {
    fn from(row: RowRef<'_>) -> Arc<[u64]> {
        match row {
            RowRef::Mapped(s) => s.into(),
            RowRef::Decoded(v) => v.into(),
        }
    }
}

impl From<RowRef<'_>> for Vec<u64> {
    fn from(row: RowRef<'_>) -> Vec<u64> {
        match row {
            RowRef::Mapped(s) => s.to_vec(),
            RowRef::Decoded(v) => v,
        }
    }
}

/// A mapped CSR shard of either on-disk format, dispatching on the file
/// magic. Readers above this type ([`crate::ShardSet`], the serving
/// engine) see one [`RowRef`]-returning row API and never branch on the
/// format again.
pub enum CsrMap {
    /// v1: raw `u64` columns, zero-copy rows.
    V1(CsrReader),
    /// v2: varint delta-encoded columns, rows decoded on demand.
    V2(Csr2Reader),
}

impl CsrMap {
    /// Map and validate a CSR shard file of either format, sniffing the
    /// 8-byte magic to pick the reader.
    ///
    /// # Errors
    ///
    /// `InvalidData` for an unrecognized magic or any structural defect
    /// the format's reader rejects; any I/O error from opening the file.
    pub fn open(path: &Path) -> io::Result<CsrMap> {
        let mut magic = [0u8; 8];
        let n = File::open(path)?.read(&mut magic)?;
        match &magic[..n] {
            m if m == MAGIC => Ok(CsrMap::V1(CsrReader::open(path)?)),
            m if m == MAGIC2 => Ok(CsrMap::V2(Csr2Reader::open(path)?)),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: bad magic (not a KRONCSR1 or KRONCSR2 file)",
                    path.display()
                ),
            )),
        }
    }

    /// Whether this shard is the v2 (varint delta-encoded) format.
    pub fn is_v2(&self) -> bool {
        matches!(self, CsrMap::V2(_))
    }

    /// First product vertex of the shard.
    pub fn vertex_lo(&self) -> u64 {
        match self {
            CsrMap::V1(r) => r.vertex_lo(),
            CsrMap::V2(r) => r.vertex_lo(),
        }
    }

    /// Product vertices covered.
    pub fn num_rows(&self) -> u64 {
        match self {
            CsrMap::V1(r) => r.num_rows(),
            CsrMap::V2(r) => r.num_rows(),
        }
    }

    /// Adjacency entries stored.
    pub fn nnz(&self) -> u64 {
        match self {
            CsrMap::V1(r) => r.nnz(),
            CsrMap::V2(r) => r.nnz(),
        }
    }

    /// The adjacency row of product vertex `p`, or `None` if `p` is
    /// outside the shard. Zero-copy for v1, decoded for v2.
    pub fn row(&self, p: u64) -> Option<RowRef<'_>> {
        match self {
            CsrMap::V1(r) => r.row(p).map(RowRef::Mapped),
            CsrMap::V2(r) => r.row(p).map(RowRef::Decoded),
        }
    }

    /// `p`'s row in the `enc=vd` wire encoding, zero-copy, if this shard
    /// already stores it that way (v2 only — a v1 caller re-encodes).
    pub fn row_bytes_vd(&self, p: u64) -> Option<&[u8]> {
        match self {
            CsrMap::V1(_) => None,
            CsrMap::V2(r) => r.row_bytes(p),
        }
    }

    /// Iterate `(p, row)` pairs in ascending vertex order, one per
    /// covered product vertex — the shard-ordered traversal whole-graph
    /// kernels stream over.
    pub fn rows(&self) -> Box<dyn Iterator<Item = (u64, RowRef<'_>)> + '_> {
        match self {
            CsrMap::V1(r) => Box::new(r.rows().map(|(p, row)| (p, RowRef::Mapped(row)))),
            CsrMap::V2(r) => Box::new(r.rows().map(|(p, row)| (p, RowRef::Decoded(row)))),
        }
    }

    /// Iterate all `(p, q)` entries in row-major order.
    pub fn entries(&self) -> Box<dyn Iterator<Item = (u64, u64)> + '_> {
        match self {
            CsrMap::V1(r) => Box::new(r.entries()),
            CsrMap::V2(r) => Box::new(r.entries()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Csr2Sink, CsrSink, EdgeSink};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kron_csr_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_mmap_roundtrip_bit_exact() {
        let dir = tmpdir("roundtrip");
        // rows: vertex 10: [3, 7]; vertex 11: []; vertex 12: [0]
        let lens = vec![2u64, 0, 1];
        let mut sink = CsrSink::create(&dir, "s.csr", 10, lens.into_iter()).unwrap();
        sink.push(10, 3).unwrap();
        sink.push(10, 7).unwrap();
        sink.push(12, 0).unwrap();
        let (name, bytes) = sink.finish().unwrap().unwrap();
        assert_eq!(name, "s.csr");
        assert_eq!(Some(bytes), file_size_checked(3, 3));
        let r = CsrReader::open(&dir.join("s.csr")).unwrap();
        assert_eq!(r.vertex_lo(), 10);
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.nnz(), 3);
        assert_eq!(r.row(10).unwrap(), &[3, 7]);
        assert_eq!(r.row(11).unwrap(), &[] as &[u64]);
        assert_eq!(r.row(12).unwrap(), &[0]);
        assert_eq!(r.row(13), None);
        assert_eq!(r.row(9), None);
        assert_eq!(
            r.entries().collect::<Vec<_>>(),
            vec![(10, 3), (10, 7), (12, 0)]
        );
        let rows: Vec<(u64, Vec<u64>)> = r.rows().map(|(p, row)| (p, row.to_vec())).collect();
        assert_eq!(
            rows,
            vec![(10, vec![3, 7]), (11, vec![]), (12, vec![0])],
            "rows() must visit every vertex in order, empty rows included"
        );
    }

    #[test]
    fn csr_sink_rejects_out_of_order_and_overflow() {
        let dir = tmpdir("order");
        let mut sink = CsrSink::create(&dir, "bad.csr", 0, vec![1u64, 1].into_iter()).unwrap();
        assert!(
            sink.push(1, 5).is_err(),
            "row 1 before row 0 is filled must fail"
        );
        let mut sink1 = CsrSink::create(&dir, "bad1.csr", 0, vec![1u64, 1].into_iter()).unwrap();
        sink1.push(0, 5).unwrap();
        sink1.push(1, 6).unwrap();
        assert!(sink1.push(0, 7).is_err(), "going back a row must fail");
        assert!(sink1.push(2, 7).is_err(), "vertex outside shard must fail");
        let mut sink2 = CsrSink::create(&dir, "bad2.csr", 0, vec![1u64].into_iter()).unwrap();
        sink2.push(0, 1).unwrap();
        assert!(sink2.push(0, 2).is_err(), "row overflow must fail");
        let mut sink3 = CsrSink::create(&dir, "bad3.csr", 0, vec![2u64].into_iter()).unwrap();
        sink3.push(0, 1).unwrap();
        assert!(sink3.finish().is_err(), "underfull finish must fail");
        // failed sinks leave only .tmp files behind
        assert!(!dir.join("bad.csr").exists());
        assert!(!dir.join("bad3.csr").exists());
    }

    #[test]
    fn reader_rejects_overflowing_header_without_panicking() {
        // 40-byte file whose header claims 2^61−1 rows: the naive size
        // computation 8·(rows+1) wraps; open must return an error.
        let dir = tmpdir("overflow");
        let path = dir.join("evil.csr");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // vertex_lo
        bytes.extend_from_slice(&((1u64 << 61) - 1).to_le_bytes()); // num_rows
        bytes.extend_from_slice(&1u64.to_le_bytes()); // nnz
        bytes.extend_from_slice(&0u64.to_le_bytes()); // filler
        std::fs::write(&path, &bytes).unwrap();
        let err = match CsrReader::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("overflowing header must not open"),
        };
        assert!(err.to_string().contains("overflow"), "{err}");
        assert_eq!(file_size_checked(u64::MAX, 1), None);
    }

    #[test]
    fn varint_roundtrips_and_rejects_malformed() {
        let samples = [
            0u64,
            1,
            0x7f,
            0x80,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &x in &samples {
            varint_push(x, &mut buf);
        }
        let mut pos = 0;
        for &x in &samples {
            assert_eq!(varint_read(&buf, &mut pos), Some(x));
        }
        assert_eq!(pos, buf.len());
        // truncated mid-varint
        let mut long = Vec::new();
        varint_push(u64::MAX, &mut long);
        let mut pos = 0;
        assert_eq!(varint_read(&long[..long.len() - 1], &mut pos), None);
        // 10 continuation bytes overflow a u64
        let mut pos = 0;
        assert_eq!(varint_read(&[0xff; 11], &mut pos), None);
        // a 10th byte above 1 overflows the 64th bit
        let mut evil = vec![0x80u8; 9];
        evil.push(0x02);
        let mut pos = 0;
        assert_eq!(varint_read(&evil, &mut pos), None);
    }

    #[test]
    fn row_vd_codec_roundtrips() {
        for row in [
            vec![],
            vec![0u64],
            vec![3, 7],
            vec![0, 1, 2, 3, 1_000_000],
            vec![5, 500, u64::MAX],
        ] {
            let mut bytes = Vec::new();
            encode_row_vd(&row, &mut bytes);
            let mut back = Vec::new();
            assert!(decode_row_vd(&bytes, &mut back));
            assert_eq!(back, row);
        }
        // truncated stream decodes the prefix and reports malformed
        let mut bytes = Vec::new();
        encode_row_vd(&[1, 300], &mut bytes);
        let mut back = Vec::new();
        assert!(!decode_row_vd(&bytes[..bytes.len() - 1], &mut back));
        assert_eq!(back, vec![1]);
    }

    #[test]
    fn csr2_write_then_read_roundtrip() {
        let dir = tmpdir("v2_roundtrip");
        // rows: vertex 10: [3, 7]; vertex 11: []; vertex 12: [0]
        let lens = vec![2u64, 0, 1];
        let mut sink = Csr2Sink::create(&dir, "s.csr2", 10, lens.into_iter()).unwrap();
        sink.push(10, 3).unwrap();
        sink.push(10, 7).unwrap();
        sink.push(12, 0).unwrap();
        let (name, bytes) = sink.finish().unwrap().unwrap();
        assert_eq!(name, "s.csr2");
        // stream: row 10 = varint(3), varint(4); row 12 = varint(0) → 3 bytes
        assert_eq!(Some(bytes), file_size2_checked(3, 3));
        let r = Csr2Reader::open(&dir.join("s.csr2")).unwrap();
        assert_eq!(r.vertex_lo(), 10);
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.nnz(), 3);
        assert_eq!(r.offsets(), &[0, 2, 2, 3]);
        assert_eq!(r.row(10).unwrap(), vec![3, 7]);
        assert_eq!(r.row(11).unwrap(), Vec::<u64>::new());
        assert_eq!(r.row(12).unwrap(), vec![0]);
        assert_eq!(r.row(13), None);
        assert_eq!(r.row(9), None);
        assert_eq!(r.row_bytes(10).unwrap(), &[3u8, 4]);
        assert_eq!(
            r.entries().collect::<Vec<_>>(),
            vec![(10, 3), (10, 7), (12, 0)]
        );
        let rows: Vec<(u64, Vec<u64>)> = r.rows().collect();
        assert_eq!(rows, vec![(10, vec![3, 7]), (11, vec![]), (12, vec![0])]);
    }

    #[test]
    fn csr_map_dispatches_on_magic_and_rows_agree() {
        let dir = tmpdir("map_dispatch");
        let lens = vec![2u64, 0, 1];
        let mut s1 = CsrSink::create(&dir, "a.csr", 10, lens.clone().into_iter()).unwrap();
        let mut s2 = Csr2Sink::create(&dir, "a.csr2", 10, lens.into_iter()).unwrap();
        for (p, q) in [(10, 3), (10, 7), (12, 0)] {
            s1.push(p, q).unwrap();
            s2.push(p, q).unwrap();
        }
        s1.finish().unwrap();
        s2.finish().unwrap();
        let v1 = CsrMap::open(&dir.join("a.csr")).unwrap();
        let v2 = CsrMap::open(&dir.join("a.csr2")).unwrap();
        assert!(!v1.is_v2());
        assert!(v2.is_v2());
        for v in 9..=13u64 {
            match (v1.row(v), v2.row(v)) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_eq!(a.as_slice(), b.as_slice(), "row {v}"),
                (a, b) => panic!("row {v} residency disagrees: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(
            v1.entries().collect::<Vec<_>>(),
            v2.entries().collect::<Vec<_>>()
        );
        let r1: Vec<(u64, Vec<u64>)> = v1.rows().map(|(p, r)| (p, r.into())).collect();
        let r2: Vec<(u64, Vec<u64>)> = v2.rows().map(|(p, r)| (p, r.into())).collect();
        assert_eq!(r1, r2);
        assert!(v1.row_bytes_vd(10).is_none(), "v1 has no encoded bytes");
        assert_eq!(v2.row_bytes_vd(10).unwrap(), &[3u8, 4]);
        // unknown magic is a named error
        std::fs::write(dir.join("x.csr"), b"NOTACSRX________").unwrap();
        let err = match CsrMap::open(&dir.join("x.csr")) {
            Err(e) => e,
            Ok(_) => panic!("unknown magic must not open"),
        };
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn csr2_sink_rejects_unsorted_columns_and_underfill() {
        let dir = tmpdir("v2_order");
        let mut sink = Csr2Sink::create(&dir, "bad.csr2", 0, vec![3u64].into_iter()).unwrap();
        sink.push(0, 5).unwrap();
        let err = sink.push(0, 5).unwrap_err();
        assert!(err.to_string().contains("strictly ascending"), "{err}");
        let mut sink2 = Csr2Sink::create(&dir, "bad2.csr2", 0, vec![2u64].into_iter()).unwrap();
        sink2.push(0, 1).unwrap();
        assert!(sink2.finish().is_err(), "underfull finish must fail");
        assert!(!dir.join("bad.csr2").exists());
        assert!(!dir.join("bad2.csr2").exists());
    }

    #[test]
    fn csr2_reader_rejects_overflow_and_corruption() {
        let dir = tmpdir("v2_corrupt");
        // overflowing header must not panic
        let path = dir.join("evil.csr2");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC2);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&((1u64 << 61) - 1).to_le_bytes()); // num_rows
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = match Csr2Reader::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("overflowing header must not open"),
        };
        assert!(err.to_string().contains("overflow"), "{err}");
        assert_eq!(file_size2_checked(u64::MAX, 1), None);

        let mut sink = Csr2Sink::create(&dir, "c.csr2", 0, vec![2u64].into_iter()).unwrap();
        sink.push(0, 300).unwrap();
        sink.push(0, 301).unwrap();
        sink.finish().unwrap();
        let path = dir.join("c.csr2");
        let good = std::fs::read(&path).unwrap();
        // v1 reader refuses a v2 file and vice versa
        assert!(CsrReader::open(&path).is_err());
        // bad magic
        let mut bad = good.clone();
        bad[7] = b'9';
        std::fs::write(&path, &bad).unwrap();
        assert!(Csr2Reader::open(&path).is_err());
        // truncated stream no longer matches the offset table
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(Csr2Reader::open(&path).is_err());
        // stream shorter than nnz entries
        let mut bad = good.clone();
        bad[40..48].copy_from_slice(&1u64.to_le_bytes()); // offsets[1] = 1
        bad.truncate(good.len() - 2); // stream shrinks to 1 byte < nnz 2
        std::fs::write(&path, &bad).unwrap();
        let err = match Csr2Reader::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("short stream must not open"),
        };
        assert!(err.to_string().contains("cannot hold"), "{err}");
        // non-monotone offsets
        let mut bad = good.clone();
        bad[32..40].copy_from_slice(&2u64.to_le_bytes()); // offsets[0] = 2
        std::fs::write(&path, &bad).unwrap();
        assert!(Csr2Reader::open(&path).is_err());
    }

    #[test]
    fn reader_rejects_corruption() {
        let dir = tmpdir("corrupt");
        let mut sink = CsrSink::create(&dir, "c.csr", 0, vec![1u64].into_iter()).unwrap();
        sink.push(0, 9).unwrap();
        sink.finish().unwrap();
        let path = dir.join("c.csr");
        let good = std::fs::read(&path).unwrap();
        // bad magic
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(CsrReader::open(&path).is_err());
        // truncated
        std::fs::write(&path, &good[..good.len() - 8]).unwrap();
        assert!(CsrReader::open(&path).is_err());
        // offsets endpoint corrupt (nnz in header says 1, offsets say 2)
        let mut bad = good.clone();
        bad[40..48].copy_from_slice(&2u64.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(CsrReader::open(&path).is_err());
    }
}
