//! The on-disk CSR shard format and its mmap-backed zero-copy reader.
//!
//! Layout (all integers little-endian `u64`):
//!
//! ```text
//! offset  size            field
//! 0       8               magic  b"KRONCSR1"
//! 8       8               vertex_lo — first product vertex of the shard
//! 16      8               num_rows  — product vertices covered
//! 24      8               nnz       — adjacency entries in the shard
//! 32      8·(num_rows+1)  offsets   — local prefix sums, offsets[0] = 0
//! ...     8·nnz           cols      — column (neighbor) vertex ids
//! ```
//!
//! Row `r` (product vertex `vertex_lo + r`) owns
//! `cols[offsets[r]..offsets[r+1]]`, sorted ascending. The header starts
//! every section at an 8-byte boundary, so a page-aligned mapping exposes
//! both arrays as `&[u64]` without copying.

use crate::mmap::{as_u64s, Mmap};
use std::fs::File;
use std::io;
use std::path::Path;

/// File magic, also the format version.
pub const MAGIC: &[u8; 8] = b"KRONCSR1";

/// Header size in bytes.
pub const HEADER: u64 = 32;

/// Exact file size of a shard with the given dimensions, or `None` if
/// the dimensions are corrupt enough to overflow (an attacker- or
/// corruption-supplied header must not panic the reader).
///
/// This is the **only** size computation for the format: there is
/// deliberately no panicking variant, so header-derived dimensions can
/// never wrap or abort no matter which call path reaches them.
pub fn file_size_checked(num_rows: u64, nnz: u64) -> Option<u64> {
    let offsets = num_rows.checked_add(1)?.checked_mul(8)?;
    let cols = nnz.checked_mul(8)?;
    HEADER.checked_add(offsets)?.checked_add(cols)
}

/// Zero-copy reader over an on-disk CSR shard.
///
/// Opening validates the header against the file length and the offset
/// array's structure; row access is then slicing into the mapping.
pub struct CsrReader {
    map: Mmap,
    vertex_lo: u64,
    num_rows: u64,
    nnz: u64,
}

impl CsrReader {
    /// Map and validate a CSR shard file.
    ///
    /// # Errors
    ///
    /// `InvalidData` for a bad magic, a header that contradicts the file
    /// size (with overflow-checked arithmetic), or non-monotone offsets;
    /// any I/O error from opening or mapping the file.
    pub fn open(path: &Path) -> io::Result<CsrReader> {
        let file = File::open(path)?;
        let map = Mmap::map_readonly(&file)?;
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if map.len() < HEADER as usize {
            return Err(bad(format!("{}: truncated header", path.display())));
        }
        if &map[..8] != MAGIC {
            return Err(bad(format!(
                "{}: bad magic (not a KRONCSR1 file)",
                path.display()
            )));
        }
        let word = |i: usize| u64::from_le_bytes(map[8 * i..8 * i + 8].try_into().unwrap());
        let (vertex_lo, num_rows, nnz) = (word(1), word(2), word(3));
        let expect = file_size_checked(num_rows, nnz)
            .filter(|&sz| usize::try_from(sz).is_ok())
            .ok_or_else(|| {
                bad(format!(
                    "{}: header dimensions overflow ({num_rows} rows, {nnz} nnz)",
                    path.display()
                ))
            })?;
        if map.len() as u64 != expect {
            return Err(bad(format!(
                "{}: file is {} bytes, header implies {expect}",
                path.display(),
                map.len()
            )));
        }
        let reader = CsrReader {
            map,
            vertex_lo,
            num_rows,
            nnz,
        };
        let offsets = reader.offsets();
        if offsets[0] != 0 || offsets[num_rows as usize] != nnz {
            return Err(bad(format!(
                "{}: offset array endpoints corrupt",
                path.display()
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad(format!("{}: offsets not monotone", path.display())));
        }
        Ok(reader)
    }

    /// First product vertex of the shard.
    pub fn vertex_lo(&self) -> u64 {
        self.vertex_lo
    }

    /// Product vertices covered.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Adjacency entries stored.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// The local offset array (`num_rows + 1` entries), zero-copy.
    pub fn offsets(&self) -> &[u64] {
        let start = HEADER as usize;
        let end = start + 8 * (self.num_rows as usize + 1);
        as_u64s(&self.map[start..end])
    }

    /// The flat column array, zero-copy.
    pub fn cols(&self) -> &[u64] {
        let start = HEADER as usize + 8 * (self.num_rows as usize + 1);
        as_u64s(&self.map[start..])
    }

    /// The adjacency row of product vertex `p`, or `None` if `p` is
    /// outside the shard. Zero-copy slice into the mapping.
    pub fn row(&self, p: u64) -> Option<&[u64]> {
        let local = p.checked_sub(self.vertex_lo)?;
        if local >= self.num_rows {
            return None;
        }
        let offsets = self.offsets();
        let (lo, hi) = (
            offsets[local as usize] as usize,
            offsets[local as usize + 1] as usize,
        );
        Some(&self.cols()[lo..hi])
    }

    /// Iterate `(p, row)` pairs in ascending vertex order, one per
    /// covered product vertex. Each row is a zero-copy sorted slice into
    /// the mapping — the shard-ordered traversal whole-graph kernels
    /// stream over.
    pub fn rows(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        let offsets = self.offsets();
        let cols = self.cols();
        (0..self.num_rows as usize).map(move |r| {
            (
                self.vertex_lo + r as u64,
                &cols[offsets[r] as usize..offsets[r + 1] as usize],
            )
        })
    }

    /// Iterate all `(p, q)` entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let offsets = self.offsets();
        let cols = self.cols();
        (0..self.num_rows as usize).flat_map(move |r| {
            let p = self.vertex_lo + r as u64;
            cols[offsets[r] as usize..offsets[r + 1] as usize]
                .iter()
                .map(move |&q| (p, q))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CsrSink, EdgeSink};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kron_csr_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_mmap_roundtrip_bit_exact() {
        let dir = tmpdir("roundtrip");
        // rows: vertex 10: [3, 7]; vertex 11: []; vertex 12: [0]
        let lens = vec![2u64, 0, 1];
        let mut sink = CsrSink::create(&dir, "s.csr", 10, lens.into_iter()).unwrap();
        sink.push(10, 3).unwrap();
        sink.push(10, 7).unwrap();
        sink.push(12, 0).unwrap();
        let (name, bytes) = sink.finish().unwrap().unwrap();
        assert_eq!(name, "s.csr");
        assert_eq!(Some(bytes), file_size_checked(3, 3));
        let r = CsrReader::open(&dir.join("s.csr")).unwrap();
        assert_eq!(r.vertex_lo(), 10);
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.nnz(), 3);
        assert_eq!(r.row(10).unwrap(), &[3, 7]);
        assert_eq!(r.row(11).unwrap(), &[] as &[u64]);
        assert_eq!(r.row(12).unwrap(), &[0]);
        assert_eq!(r.row(13), None);
        assert_eq!(r.row(9), None);
        assert_eq!(
            r.entries().collect::<Vec<_>>(),
            vec![(10, 3), (10, 7), (12, 0)]
        );
        let rows: Vec<(u64, Vec<u64>)> = r.rows().map(|(p, row)| (p, row.to_vec())).collect();
        assert_eq!(
            rows,
            vec![(10, vec![3, 7]), (11, vec![]), (12, vec![0])],
            "rows() must visit every vertex in order, empty rows included"
        );
    }

    #[test]
    fn csr_sink_rejects_out_of_order_and_overflow() {
        let dir = tmpdir("order");
        let mut sink = CsrSink::create(&dir, "bad.csr", 0, vec![1u64, 1].into_iter()).unwrap();
        assert!(
            sink.push(1, 5).is_err(),
            "row 1 before row 0 is filled must fail"
        );
        let mut sink1 = CsrSink::create(&dir, "bad1.csr", 0, vec![1u64, 1].into_iter()).unwrap();
        sink1.push(0, 5).unwrap();
        sink1.push(1, 6).unwrap();
        assert!(sink1.push(0, 7).is_err(), "going back a row must fail");
        assert!(sink1.push(2, 7).is_err(), "vertex outside shard must fail");
        let mut sink2 = CsrSink::create(&dir, "bad2.csr", 0, vec![1u64].into_iter()).unwrap();
        sink2.push(0, 1).unwrap();
        assert!(sink2.push(0, 2).is_err(), "row overflow must fail");
        let mut sink3 = CsrSink::create(&dir, "bad3.csr", 0, vec![2u64].into_iter()).unwrap();
        sink3.push(0, 1).unwrap();
        assert!(sink3.finish().is_err(), "underfull finish must fail");
        // failed sinks leave only .tmp files behind
        assert!(!dir.join("bad.csr").exists());
        assert!(!dir.join("bad3.csr").exists());
    }

    #[test]
    fn reader_rejects_overflowing_header_without_panicking() {
        // 40-byte file whose header claims 2^61−1 rows: the naive size
        // computation 8·(rows+1) wraps; open must return an error.
        let dir = tmpdir("overflow");
        let path = dir.join("evil.csr");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // vertex_lo
        bytes.extend_from_slice(&((1u64 << 61) - 1).to_le_bytes()); // num_rows
        bytes.extend_from_slice(&1u64.to_le_bytes()); // nnz
        bytes.extend_from_slice(&0u64.to_le_bytes()); // filler
        std::fs::write(&path, &bytes).unwrap();
        let err = match CsrReader::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("overflowing header must not open"),
        };
        assert!(err.to_string().contains("overflow"), "{err}");
        assert_eq!(file_size_checked(u64::MAX, 1), None);
    }

    #[test]
    fn reader_rejects_corruption() {
        let dir = tmpdir("corrupt");
        let mut sink = CsrSink::create(&dir, "c.csr", 0, vec![1u64].into_iter()).unwrap();
        sink.push(0, 9).unwrap();
        sink.finish().unwrap();
        let path = dir.join("c.csr");
        let good = std::fs::read(&path).unwrap();
        // bad magic
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(CsrReader::open(&path).is_err());
        // truncated
        std::fs::write(&path, &good[..good.len() - 8]).unwrap();
        assert!(CsrReader::open(&path).is_err());
        // offsets endpoint corrupt (nnz in header says 1, offsets say 2)
        let mut bad = good.clone();
        bad[40..48].copy_from_slice(&2u64.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(CsrReader::open(&path).is_err());
    }
}
