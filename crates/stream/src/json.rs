//! Minimal JSON value, writer, and parser.
//!
//! The build environment has no crate registry (so no `serde_json`); shard
//! manifests are small, flat documents, and this module implements exactly
//! what they need. Numbers are kept as their raw token text so `u128`
//! counters (entry counts of trillion-edge products) round-trip exactly —
//! nothing is forced through `f64`.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its literal text (exact u128 round-trip).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Number from any displayable integer/float token.
    pub fn num<T: fmt::Display>(v: T) -> Json {
        Json::Num(v.to_string())
    }

    /// String value.
    pub fn str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required member lookup, with the key in the error.
    ///
    /// # Errors
    ///
    /// A message naming the missing key.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing key {key:?}"))
    }

    /// The value as u128 (integer tokens only).
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as usize.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// A message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(s) => write!(f, "{s}"),
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => {
            parse_lit(b, pos, b"true")?;
            Ok(Json::Bool(true))
        }
        Some(b'f') => {
            parse_lit(b, pos, b"false")?;
            Ok(Json::Bool(false))
        }
        Some(b'n') => {
            parse_lit(b, pos, b"null")?;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected character at byte {pos}"));
            }
            let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            // validate the token parses as a number
            tok.parse::<f64>()
                .map_err(|_| format!("bad number {tok:?}"))?;
            Ok(Json::Num(tok.to_string()))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // copy a full UTF-8 scalar
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
                let _ = c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u128_roundtrip_exact() {
        let big = u128::MAX;
        let doc = Json::obj(vec![("n", Json::num(big))]);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.req("n").unwrap().as_u128(), Some(big));
    }

    #[test]
    fn nested_document_roundtrips() {
        let doc = Json::obj(vec![
            ("name", Json::str("shard \"3\"\n")),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::num(1), Json::num(2.5), Json::str("x")]),
            ),
            ("inner", Json::obj(vec![("k", Json::num(7u64))])),
        ]);
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("shard \"3\"\n"));
        assert_eq!(parsed.get("items").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            parsed.get("inner").unwrap().get("k").unwrap().as_u64(),
            Some(7)
        );
    }

    #[test]
    fn whitespace_and_errors() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : false } ").unwrap();
        assert_eq!(parsed.get("b").unwrap().as_bool(), Some(false));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::req(&Json::parse("{}").unwrap(), "missing").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let parsed = Json::parse("\"a\\u00e9b\"").unwrap();
        assert_eq!(parsed.as_str(), Some("aéb"));
        let ctl = Json::Str("\u{1}".into()).to_string();
        assert_eq!(ctl, "\"\\u0001\"");
        assert_eq!(Json::parse(&ctl).unwrap().as_str(), Some("\u{1}"));
    }
}
