//! In-place conversion of a v1 (`csr`) run directory to v2 (`csr2`).
//!
//! `kron compact <DIR>` re-encodes every shard's raw `u64` column array
//! as the varint delta-encoded v2 stream, rewrites each manifest
//! (`format`, `version`, `file`, `file_bytes`), deletes the v1 artifact,
//! and finally rewrites `run.json`. The closed-form statistics and the
//! order-independent content checksum are **preserved verbatim** — the
//! entries are identical, so [`crate::StreamHash`] is too, and a
//! checksum-verified open of the compacted run proves the conversion
//! byte-exact.
//!
//! The conversion is crash-safe and idempotent: each shard commits its
//! v2 artifact atomically (`.tmp` + rename) *before* its manifest is
//! rewritten, and `run.json` flips to `csr2` only after every shard has.
//! Re-running `compact` on a partially converted directory finishes the
//! job — already-converted shards are skipped (and their stale v1
//! artifact, if a crash left one behind, is removed).

use crate::csr::{file_size_checked, CsrReader};
use crate::driver::{load_manifest, RUN_FILE};
use crate::manifest::{manifest_name, write_json_atomic, OutputFormat};
use crate::sink::{Csr2Sink, EdgeSink};
use crate::{read_json, RunSummary, StreamError};
use std::path::Path;

/// Outcome of [`compact_run`].
#[derive(Clone, Debug)]
pub struct CompactReport {
    /// Shards in the run.
    pub shards: usize,
    /// Shards converted by this invocation.
    pub converted: usize,
    /// Shards that were already csr2 (a resumed conversion).
    pub skipped: usize,
    /// Artifact bytes in v1 form (closed-form size for shards already
    /// converted before this invocation).
    pub bytes_before: u64,
    /// Artifact bytes in v2 form.
    pub bytes_after: u64,
}

impl CompactReport {
    /// Compression ratio `v1 bytes / v2 bytes` (how many times smaller
    /// the run became); 1.0 for an empty run.
    pub fn ratio(&self) -> f64 {
        if self.bytes_after == 0 {
            1.0
        } else {
            self.bytes_before as f64 / self.bytes_after as f64
        }
    }
}

fn shard_err(shard: usize, msg: String) -> StreamError {
    StreamError::Shard(shard, msg)
}

/// Convert a v1 (`csr`) run directory to v2 (`csr2`) in place.
///
/// Safe to re-run: already-converted shards are skipped, a crashed
/// conversion resumes where it stopped, and a fully-csr2 directory is a
/// no-op that just reports sizes.
///
/// # Errors
///
/// [`StreamError::Config`] when the run's format is not `csr` or `csr2`
/// (edge lists and count runs have nothing to compact);
/// [`StreamError::Shard`] naming the first shard whose artifact is
/// missing, malformed, or fails to convert; any manifest/summary error
/// from reading the directory.
pub fn compact_run(dir: &Path) -> Result<CompactReport, StreamError> {
    let run_path = dir.join(RUN_FILE);
    let run_doc = read_json(&run_path).map_err(|e| StreamError::Io(e.to_string()))?;
    let mut run = RunSummary::from_json(&run_doc)
        .map_err(|e| StreamError::Manifest(format!("{}: {e}", run_path.display())))?;
    if !matches!(run.format, OutputFormat::Csr | OutputFormat::Csr2) {
        return Err(StreamError::Config(format!(
            "{}: run format is {:?}; only csr runs can be compacted",
            dir.display(),
            run.format.as_str()
        )));
    }

    let mut report = CompactReport {
        shards: run.shards,
        converted: 0,
        skipped: 0,
        bytes_before: 0,
        bytes_after: 0,
    };
    for index in 0..run.shards {
        let m = load_manifest(dir, index)?;
        if m.shard != index {
            return Err(shard_err(index, format!("manifest says shard {}", m.shard)));
        }
        match m.format {
            OutputFormat::Csr2 => {
                // Already converted (this run resumed). The artifact must
                // still be there and the right size.
                let name = m
                    .file
                    .as_deref()
                    .ok_or_else(|| shard_err(index, "csr2 shard has no file".into()))?;
                let len = std::fs::metadata(dir.join(name))
                    .map(|md| md.len())
                    .map_err(|e| shard_err(index, format!("{name}: {e}")))?;
                if len != m.file_bytes {
                    return Err(shard_err(
                        index,
                        format!(
                            "{name}: {len} bytes on disk, manifest says {}",
                            m.file_bytes
                        ),
                    ));
                }
                // A crash between manifest rewrite and v1 deletion can
                // leave the old artifact behind; finish the job.
                if let Some(old) = OutputFormat::Csr.artifact_name(index) {
                    let _ = std::fs::remove_file(dir.join(old));
                }
                let rows = m.vertices.end - m.vertices.start;
                let v1_size = u64::try_from(m.entries)
                    .ok()
                    .and_then(|nnz| file_size_checked(rows, nnz))
                    .ok_or_else(|| shard_err(index, "manifest dimensions overflow".into()))?;
                report.skipped += 1;
                report.bytes_before += v1_size;
                report.bytes_after += len;
            }
            OutputFormat::Csr => {
                let name = m
                    .file
                    .as_deref()
                    .ok_or_else(|| shard_err(index, "csr shard has no file".into()))?;
                let old_path = dir.join(name);
                let reader =
                    CsrReader::open(&old_path).map_err(|e| shard_err(index, e.to_string()))?;
                if reader.vertex_lo() != m.vertices.start
                    || reader.num_rows() != m.vertices.end - m.vertices.start
                    || u128::from(reader.nnz()) != m.entries
                {
                    return Err(shard_err(
                        index,
                        format!("{name}: mapped header disagrees with manifest"),
                    ));
                }
                let name2 = OutputFormat::Csr2
                    .artifact_name(index)
                    .expect("csr2 names artifacts");
                // Row lengths come straight from the v1 offset array —
                // no factors needed, so compact works on a bare run.
                let offsets = reader.offsets();
                let lengths = offsets.windows(2).map(|w| w[1] - w[0]);
                let mut sink = Csr2Sink::create(dir, &name2, reader.vertex_lo(), lengths)
                    .map_err(|e| shard_err(index, e.to_string()))?;
                for (p, q) in reader.entries() {
                    sink.push(p, q)
                        .map_err(|e| shard_err(index, e.to_string()))?;
                }
                let (file, bytes) = sink
                    .finish()
                    .map_err(|e| shard_err(index, e.to_string()))?
                    .expect("csr2 sink commits a file");
                // Entries are identical, so the stream hash and every
                // closed-form statistic carry over untouched.
                let mut m2 = m.clone();
                m2.format = OutputFormat::Csr2;
                m2.file = Some(file);
                m2.file_bytes = bytes;
                write_json_atomic(dir, &manifest_name(index), &m2.to_json())
                    .map_err(|e| shard_err(index, e.to_string()))?;
                drop(reader);
                std::fs::remove_file(&old_path)
                    .map_err(|e| shard_err(index, format!("{name}: {e}")))?;
                report.converted += 1;
                report.bytes_before += m.file_bytes;
                report.bytes_after += bytes;
            }
            other => {
                return Err(shard_err(
                    index,
                    format!(
                        "manifest format is {}, expected csr or csr2",
                        other.as_str()
                    ),
                ));
            }
        }
    }

    if run.format != OutputFormat::Csr2 {
        run.format = OutputFormat::Csr2;
        write_json_atomic(dir, RUN_FILE, &run.to_json())
            .map_err(|e| StreamError::Io(e.to_string()))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{stream_product, StreamConfig};
    use crate::{verify_shards, ShardSet};
    use kron::KronProduct;
    use kron_graph::Graph;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kron_compact_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn product() -> KronProduct {
        let a = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 4), (5, 5)]);
        let b = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 3), (0, 0)]);
        KronProduct::new(a, b)
    }

    #[test]
    fn compact_converts_in_place_preserving_checksums_and_answers() {
        let dir = tmpdir("roundtrip");
        let c = product();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
        cfg.shards = 3;
        stream_product(&c, &cfg).unwrap();
        let before: Vec<_> = (0..3).map(|i| load_manifest(&dir, i).unwrap()).collect();

        let report = compact_run(&dir).unwrap();
        assert_eq!(report.converted, 3);
        assert_eq!(report.skipped, 0);
        assert!(
            report.bytes_after < report.bytes_before,
            "compaction must shrink: {report:?}"
        );
        assert!(report.ratio() > 1.0);

        // manifests: format flipped, stats and checksums untouched
        for (i, old) in before.iter().enumerate() {
            let m = load_manifest(&dir, i).unwrap();
            assert_eq!(m.format, OutputFormat::Csr2);
            assert_eq!(m.hash, old.hash, "shard {i} checksum must be preserved");
            assert_eq!(m.entries, old.entries);
            assert_eq!(m.triangle_sum, old.triangle_sum);
            assert!(!dir.join(old.file.as_deref().unwrap()).exists());
        }
        // the compacted run passes full verification and answers rows
        verify_shards(&dir, true).unwrap();
        let set = ShardSet::open_verified(&dir).unwrap();
        assert_eq!(set.run().format, OutputFormat::Csr2);
        for v in 0..c.num_vertices() {
            assert_eq!(&*set.row(v).unwrap(), c.neighbors(v).as_slice(), "row {v}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_is_idempotent_and_resumes_partial_conversions() {
        let dir = tmpdir("resume");
        let c = product();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
        cfg.shards = 3;
        stream_product(&c, &cfg).unwrap();
        compact_run(&dir).unwrap();
        // a second run is a no-op that still reports sizes
        let again = compact_run(&dir).unwrap();
        assert_eq!(again.converted, 0);
        assert_eq!(again.skipped, 3);
        assert!(again.bytes_before > again.bytes_after);

        // simulate a crash mid-conversion: regenerate as csr, convert,
        // then put shard 1's *old* state back (csr manifest + artifact)
        let dir2 = tmpdir("resume_partial");
        let mut cfg2 = StreamConfig::new(&dir2, OutputFormat::Csr);
        cfg2.shards = 3;
        stream_product(&c, &cfg2).unwrap();
        let m1 = load_manifest(&dir2, 1).unwrap();
        let v1_name = m1.file.as_deref().unwrap().to_string();
        let v1_bytes = std::fs::read(dir2.join(&v1_name)).unwrap();
        compact_run(&dir2).unwrap();
        std::fs::write(dir2.join(&v1_name), &v1_bytes).unwrap();
        write_json_atomic(&dir2, &manifest_name(1), &m1.to_json()).unwrap();
        // run.json already says csr2, but shard 1 is back to csr — the
        // rerun must convert exactly that one and heal the directory
        let heal = compact_run(&dir2).unwrap();
        assert_eq!(heal.converted, 1);
        assert_eq!(heal.skipped, 2);
        verify_shards(&dir2, false).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn compact_rejects_non_csr_runs() {
        let dir = tmpdir("edges");
        let c = product();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Edges);
        cfg.shards = 2;
        stream_product(&c, &cfg).unwrap();
        let err = compact_run(&dir).unwrap_err();
        assert!(matches!(err, StreamError::Config(_)), "{err}");
        assert!(err.to_string().contains("only csr runs"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
