//! Read-only memory mapping with a portable fallback.
//!
//! On unix this calls `mmap(2)` directly (the build environment has no
//! crate registry, so no `memmap2`); elsewhere — and for empty files — it
//! falls back to reading the file into an owned, 8-byte-aligned buffer.
//! Either way [`Mmap`] dereferences to `&[u8]` whose base address is
//! suitably aligned for `u64` access (page-aligned under mmap, `Vec<u64>`
//! backed in the fallback).

use std::fs::File;
use std::io;

/// A read-only view of an entire file.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u64>, usize),
}

// The mapping is read-only for its whole lifetime.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Any `mmap(2)` failure (the empty-file case maps a dummy page and
    /// cannot fail for that reason).
    pub fn map_readonly(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len_usize = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "file too large to map"))?;
        if len_usize == 0 {
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new(), 0),
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file, length matches its size,
            // and the mapping is private + read-only; unmapped in Drop.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len_usize,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                inner: Inner::Mapped {
                    ptr: ptr as *const u8,
                    len: len_usize,
                },
            })
        }
        #[cfg(not(unix))]
        {
            Self::read_owned(file, len_usize)
        }
    }

    /// Fallback: read the whole file into an 8-byte-aligned buffer.
    #[allow(dead_code)]
    fn read_owned(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: u64 buffer reinterpreted as bytes for reading; any bit
        // pattern is a valid u64.
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, words * 8) };
        let mut reader = file;
        reader.read_exact(&mut bytes[..len])?;
        Ok(Mmap {
            inner: Inner::Owned(buf, len),
        })
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: the mapping is live for self's lifetime.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Owned(buf, len) => {
                // SAFETY: buf holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: ptr/len came from a successful mmap.
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

/// View an 8-aligned, 8-multiple byte region as little-endian u64 words.
///
/// # Panics
/// Panics if `bytes` is misaligned or not a multiple of 8 long.
pub fn as_u64s(bytes: &[u8]) -> &[u64] {
    assert_eq!(bytes.len() % 8, 0, "length not a multiple of 8");
    assert_eq!(bytes.as_ptr() as usize % 8, 0, "base address misaligned");
    const { assert!(cfg!(target_endian = "little"), "formats are little-endian") };
    // SAFETY: alignment and length checked above; u64 has no invalid bit
    // patterns; the lifetime is inherited from `bytes`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kron_mmap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp("words.bin");
        let words: Vec<u64> = (0..1000u64)
            .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let mut f = File::create(&path).unwrap();
        for w in &words {
            f.write_all(&w.to_le_bytes()).unwrap();
        }
        drop(f);
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.len(), 8000);
        assert_eq!(as_u64s(&map), &words[..]);
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmp("empty.bin");
        File::create(&path).unwrap();
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
    }

    #[test]
    fn owned_fallback_matches() {
        let path = tmp("owned.bin");
        std::fs::write(&path, (0u8..96).collect::<Vec<_>>()).unwrap();
        let f = File::open(&path).unwrap();
        let owned = Mmap::read_owned(&f, 96).unwrap();
        assert_eq!(&owned[..], (0u8..96).collect::<Vec<_>>().as_slice());
    }
}
