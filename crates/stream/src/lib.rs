//! # kron-stream — sharded, validated edge-stream generation
//!
//! The paper's headline capability is generating trillion-edge Kronecker
//! products as a *communication-free stream* from square-root-sized
//! factors, with exact statistics available per partition for validation.
//! `kron` (the core crate) provides the closed-form math and an in-memory
//! kernel; this crate turns the implicit product into **durable, queryable
//! artifacts**:
//!
//! * [`ShardPlan`] — partitions the edge space into contiguous left-factor
//!   row blocks, balanced by entry count (`nnz`), so each shard streams
//!   communication-free;
//! * [`EdgeSink`] — where a shard's entries go: an in-memory collector
//!   ([`MemorySink`]), a buffered binary edge-list writer
//!   ([`EdgeListSink`], fixed-width little-endian `u64` pairs), a two-pass
//!   on-disk CSR writer ([`CsrSink`]) with an mmap-backed zero-copy reader
//!   ([`CsrReader`]), its varint delta-encoded v2 sibling ([`Csr2Sink`] /
//!   [`Csr2Reader`], roughly 4× smaller on sorted rows, unified behind
//!   [`CsrMap`] + [`RowRef`]), or a statistics-only counter
//!   ([`CountSink`]); [`compact_run`] converts a v1 run to v2 in place
//!   with checksums preserved;
//! * [`ShardManifest`] — per-shard JSON recording the shard's range, entry
//!   count, closed-form checksums (degree sum, triangle-participation sum)
//!   and an order-independent content hash, so every shard is
//!   **independently validatable** and a partial run **resumes** by
//!   skipping completed shards;
//! * [`stream_product`] — the concurrent driver; [`verify_shards`] — the
//!   independent validator;
//! * [`ShardSet`] — opens a completed CSR run for **in-place querying**:
//!   every shard is validated and memory-mapped once, and product vertices
//!   route to their owning shard by the plan's contiguous vertex ranges.
//!   `kron-serve` builds its point-query engine on top of this.
//!
//! ## Quickstart
//!
//! ```
//! use kron::KronProduct;
//! use kron_graph::Graph;
//! use kron_stream::{stream_product, verify_shards, OutputFormat, StreamConfig};
//!
//! let a = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
//! let c = KronProduct::new(a.clone(), a);
//! let dir = std::env::temp_dir().join(format!("kron_stream_doc_{}", std::process::id()));
//! let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
//! cfg.shards = 2;
//! let run = stream_product(&c, &cfg).unwrap();
//! assert_eq!(run.total_entries, c.nnz());
//! let report = verify_shards(&dir, true).unwrap();
//! assert_eq!(report.total_entries, c.nnz());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

mod compact;
pub mod csr;
mod driver;
pub mod json;
mod manifest;
pub mod mmap;
mod open;
mod plan;
mod sink;
mod verify;

pub use compact::{compact_run, CompactReport};
pub use csr::{decode_row_vd, encode_row_vd, Csr2Reader, CsrMap, CsrReader, RowRef};
pub use driver::{
    load_manifest, run_shard, stream_product, StreamConfig, FACTOR_A_FILE, FACTOR_B_FILE, RUN_FILE,
};
pub use manifest::{manifest_name, read_json, OutputFormat, RunSummary, ShardManifest, StreamHash};
pub use open::{OpenShard, ShardSet};
pub use plan::{ShardPlan, ShardSpec, MAX_SHARDS};
pub use sink::{CountSink, Csr2Sink, CsrSink, EdgeListSink, EdgeSink, MemorySink};
pub use verify::{verify_shards, VerifyReport};

/// Errors of the streaming subsystem.
#[derive(Clone, Debug)]
pub enum StreamError {
    /// Invalid configuration.
    Config(String),
    /// I/O failure outside any particular shard.
    Io(String),
    /// Manifest/summary parse or cross-check failure.
    Manifest(String),
    /// A shard failed to generate or validate.
    Shard(usize, String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Config(m) => write!(f, "config error: {m}"),
            StreamError::Io(m) => write!(f, "io error: {m}"),
            StreamError::Manifest(m) => write!(f, "manifest error: {m}"),
            StreamError::Shard(i, m) => write!(f, "shard {i}: {m}"),
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;
    use kron::KronProduct;
    use kron_gen::deterministic::clique;
    use kron_graph::Graph;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kron_stream_lib_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn web_pair() -> KronProduct {
        // small loopy pair exercising every statistic
        let a = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 4), (5, 5)]);
        let b = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 3), (0, 0)]);
        KronProduct::new(a, b)
    }

    #[test]
    fn end_to_end_edges_format_verifies() {
        let dir = tmpdir("edges");
        let c = web_pair();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Edges);
        cfg.shards = 4;
        let run = stream_product(&c, &cfg).unwrap();
        assert_eq!(run.total_entries, c.nnz());
        assert_eq!(run.resumed_shards, 0);
        let report = verify_shards(&dir, true).unwrap();
        assert_eq!(report.shards, 4);
        assert_eq!(report.total_entries, c.nnz());
        assert_eq!(report.artifact_bytes, 16 * c.nnz() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_csr_format_verifies_and_roundtrips() {
        let dir = tmpdir("csr");
        let c = web_pair();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
        cfg.shards = 3;
        stream_product(&c, &cfg).unwrap();
        verify_shards(&dir, true).unwrap();
        // mmap readers reproduce every adjacency row of the product
        for shard in 0..3 {
            let m = load_manifest(&dir, shard).unwrap();
            let r = CsrReader::open(&dir.join(m.file.as_deref().unwrap())).unwrap();
            for p in m.vertices.clone() {
                assert_eq!(r.row(p).unwrap(), c.neighbors(p).as_slice(), "row {p}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn count_format_needs_no_files() {
        let dir = tmpdir("count");
        let c = KronProduct::new(clique(5), clique(4));
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Count);
        cfg.shards = 2;
        let run = stream_product(&c, &cfg).unwrap();
        assert_eq!(run.total_entries, c.nnz());
        let report = verify_shards(&dir, true).unwrap();
        assert_eq!(report.artifact_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skips_completed_shards() {
        let dir = tmpdir("resume");
        let c = web_pair();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
        cfg.shards = 5;
        stream_product(&c, &cfg).unwrap();
        // delete one shard's artifact: resume must redo exactly that one
        let victim = load_manifest(&dir, 2).unwrap();
        std::fs::remove_file(dir.join(victim.file.as_deref().unwrap())).unwrap();
        cfg.resume = true;
        let run = stream_product(&c, &cfg).unwrap();
        assert_eq!(run.resumed_shards, 4);
        verify_shards(&dir, true).unwrap();
        // without resume, everything regenerates
        cfg.resume = false;
        let run = stream_product(&c, &cfg).unwrap();
        assert_eq!(run.resumed_shards, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_detects_artifact_tampering() {
        let dir = tmpdir("tamper");
        let c = web_pair();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Edges);
        cfg.shards = 2;
        stream_product(&c, &cfg).unwrap();
        verify_shards(&dir, false).unwrap();
        // flip one bit inside shard 1's artifact
        let m = load_manifest(&dir, 1).unwrap();
        let path = dir.join(m.file.as_deref().unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = verify_shards(&dir, false).unwrap_err();
        assert!(
            matches!(err, StreamError::Shard(1, _)),
            "expected shard 1 failure, got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_detects_manifest_tampering() {
        let dir = tmpdir("tamper_manifest");
        let c = web_pair();
        let cfg = StreamConfig::new(&dir, OutputFormat::Count);
        stream_product(&c, &cfg).unwrap();
        // inflate a triangle sum in one manifest
        let path = dir.join(manifest_name(3));
        let text = std::fs::read_to_string(&path).unwrap();
        let mut m = ShardManifest::from_json(&json::Json::parse(&text).unwrap()).unwrap();
        m.triangle_sum += 1;
        std::fs::write(&path, m.to_json().to_string()).unwrap();
        assert!(verify_shards(&dir, false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rerun_with_fewer_shards_removes_stale_artifacts() {
        let dir = tmpdir("shrink");
        let c = web_pair();
        let mut cfg = StreamConfig::new(&dir, OutputFormat::Edges);
        cfg.shards = 8;
        stream_product(&c, &cfg).unwrap();
        assert!(dir.join("shard_00007.edges").exists());
        // shrink the plan: indices 4..8 must disappear from disk
        cfg.shards = 4;
        stream_product(&c, &cfg).unwrap();
        for stale in 4..8 {
            assert!(!dir.join(format!("shard_{stale:05}.edges")).exists());
            assert!(!dir.join(crate::manifest_name(stale)).exists());
        }
        verify_shards(&dir, true).unwrap();
        // switch format: old-format artifacts must disappear too
        cfg.format = OutputFormat::Csr;
        stream_product(&c, &cfg).unwrap();
        for shard in 0..4 {
            assert!(!dir.join(format!("shard_{shard:05}.edges")).exists());
            assert!(dir.join(format!("shard_{shard:05}.csr")).exists());
        }
        verify_shards(&dir, true).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_rejects_corrupt_shard_counts_without_panicking() {
        let dir = tmpdir("bad_counts");
        let c = web_pair();
        let cfg = StreamConfig::new(&dir, OutputFormat::Count);
        stream_product(&c, &cfg).unwrap();
        let run_path = dir.join(RUN_FILE);
        let good = std::fs::read_to_string(&run_path).unwrap();
        for bad in ["\"shards\":0", "\"shards\":99999999999"] {
            std::fs::write(&run_path, good.replace("\"shards\":8", bad)).unwrap();
            let err = verify_shards(&dir, false).unwrap_err();
            assert!(matches!(err, StreamError::Manifest(_)), "{err}");
        }
        // config-side bound too
        let mut big = StreamConfig::new(&dir, OutputFormat::Count);
        big.shards = MAX_SHARDS + 1;
        assert!(matches!(
            stream_product(&c, &big),
            Err(StreamError::Config(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_sinks_concatenate_to_the_full_generator_loop() {
        let c = web_pair();
        let plan = ShardPlan::new(&c, 7);
        let mut all = Vec::new();
        for spec in plan.iter() {
            let mut sink = MemorySink::default();
            let m = run_shard(&c, spec, OutputFormat::Count, &mut sink).unwrap();
            assert_eq!(m.entries as usize, sink.entries.len());
            all.extend(sink.entries);
        }
        let mut expect: Vec<(u64, u64)> = c.adjacency_entries().collect();
        all.sort_unstable();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
