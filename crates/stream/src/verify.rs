//! Independent validation of a completed (or partial) stream run: every
//! shard is re-checked against the closed-form factor statistics and its
//! on-disk artifact.

use crate::csr::CsrMap;
use crate::driver::{load_manifest, RUN_FILE};
use crate::manifest::{read_json, OutputFormat, RunSummary, StreamHash};
use crate::plan::ShardPlan;
use crate::StreamError;
use kron::KronProduct;
use std::io::Read;
use std::path::Path;

/// Outcome of [`verify_shards`].
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Shards checked.
    pub shards: usize,
    /// Total adjacency entries across all shard manifests.
    pub total_entries: u128,
    /// Artifact bytes checked on disk.
    pub artifact_bytes: u64,
    /// Whether shard streams were regenerated from the factors and
    /// compared by checksum.
    pub rehashed: bool,
}

fn shard_err(shard: usize, msg: String) -> StreamError {
    StreamError::Shard(shard, msg)
}

/// Verify a run directory produced by [`crate::stream_product`].
///
/// Checks, per shard: the manifest's closed-form statistics against a
/// fresh recomputation from the factor copies in the directory; the
/// artifact's existence, size, structure (CSR offsets and closed-form row
/// lengths), and content checksum; and globally that the shard row blocks
/// tile `0..n_A` disjointly and the entry counts sum to `nnz(A)·nnz(B)`.
///
/// With `rehash`, each shard's entry stream is additionally regenerated
/// from the factors and compared against the manifest checksum — this
/// re-does the generation work and is the strongest (slowest) check.
///
/// # Errors
///
/// The first failing check, always naming the offending manifest or
/// artifact file and the shard index.
pub fn verify_shards(dir: &Path, rehash: bool) -> Result<VerifyReport, StreamError> {
    let run_path = dir.join(RUN_FILE);
    let run_doc = read_json(&run_path).map_err(|e| StreamError::Io(e.to_string()))?;
    let run = RunSummary::from_json(&run_doc)
        .map_err(|e| StreamError::Manifest(format!("{}: {e}", run_path.display())))?;
    crate::driver::check_shard_count(run.shards)
        .map_err(|e| StreamError::Manifest(format!("run.json: {e}")))?;

    let load = |name: &str| {
        kron_graph::read_edge_list_path(dir.join(name))
            .map_err(|e| StreamError::Io(format!("reading {name}: {e}")))
    };
    let (a, b) = (load(&run.factor_a)?, load(&run.factor_b)?);
    if a.num_vertices() as u64 != run.n_a
        || b.num_vertices() as u64 != run.n_b
        || a.nnz() != run.nnz_a
        || b.nnz() != run.nnz_b
    {
        return Err(StreamError::Manifest(
            "factor copies disagree with run.json dimensions".into(),
        ));
    }
    let product = KronProduct::new(a, b);
    let plan = ShardPlan::new(&product, run.shards);

    let mut total_entries = 0u128;
    let mut total_triangle_sum = 0u128;
    let mut artifact_bytes = 0u64;
    for spec in plan.iter() {
        let m = load_manifest(dir, spec.index)?;
        if m.format != run.format {
            return Err(shard_err(
                spec.index,
                format!(
                    "manifest format {} != run format {}",
                    m.format.as_str(),
                    run.format.as_str()
                ),
            ));
        }
        // closed-form checksums, recomputed from the factors
        m.matches_stats(&spec.stats)
            .map_err(StreamError::Manifest)?;
        total_entries += m.entries;
        total_triangle_sum += m.triangle_sum;

        // artifact structure + content checksum
        match m.format {
            OutputFormat::Count => {
                if m.file.is_some() {
                    return Err(shard_err(spec.index, "count shard names a file".into()));
                }
            }
            OutputFormat::Edges => {
                let name = m
                    .file
                    .as_deref()
                    .ok_or_else(|| shard_err(spec.index, "edges shard has no file".into()))?;
                let path = dir.join(name);
                let len = std::fs::metadata(&path)
                    .map_err(|e| shard_err(spec.index, format!("{name}: {e}")))?
                    .len();
                let expect = (m.entries as u64).saturating_mul(16);
                if len != m.file_bytes {
                    return Err(shard_err(
                        spec.index,
                        format!(
                            "{name}: {len} bytes on disk, manifest file_bytes says {}",
                            m.file_bytes
                        ),
                    ));
                }
                if len != expect {
                    return Err(shard_err(
                        spec.index,
                        format!(
                            "{name}: {len} bytes on disk, {} entries imply {expect}",
                            m.entries
                        ),
                    ));
                }
                artifact_bytes += len;
                let mut hash = StreamHash::default();
                let file = std::fs::File::open(&path)
                    .map_err(|e| shard_err(spec.index, format!("{name}: {e}")))?;
                let mut reader = std::io::BufReader::with_capacity(1 << 20, file);
                let mut buf = [0u8; 16];
                for _ in 0..m.entries {
                    reader
                        .read_exact(&mut buf)
                        .map_err(|e| shard_err(spec.index, format!("{name}: {e}")))?;
                    let p = u64::from_le_bytes(buf[..8].try_into().unwrap());
                    let q = u64::from_le_bytes(buf[8..].try_into().unwrap());
                    if !spec.stats.vertices.contains(&p) {
                        return Err(shard_err(
                            spec.index,
                            format!("{name}: source vertex {p} outside shard range"),
                        ));
                    }
                    hash.update(p, q);
                }
                if hash != m.hash {
                    return Err(shard_err(
                        spec.index,
                        format!("{name}: content checksum mismatch"),
                    ));
                }
            }
            OutputFormat::Csr | OutputFormat::Csr2 => {
                let name = m.file.as_deref().ok_or_else(|| {
                    shard_err(
                        spec.index,
                        format!("{} shard has no file", m.format.as_str()),
                    )
                })?;
                let path = dir.join(name);
                let reader =
                    CsrMap::open(&path).map_err(|e| shard_err(spec.index, e.to_string()))?;
                if reader.is_v2() != (m.format == OutputFormat::Csr2) {
                    return Err(shard_err(
                        spec.index,
                        format!(
                            "{name}: artifact magic says {}, manifest says {}",
                            if reader.is_v2() { "csr2" } else { "csr" },
                            m.format.as_str()
                        ),
                    ));
                }
                if reader.vertex_lo() != spec.stats.vertices.start
                    || reader.num_rows() != spec.stats.vertices.end - spec.stats.vertices.start
                    || reader.nnz() as u128 != m.entries
                {
                    return Err(shard_err(
                        spec.index,
                        format!("{name}: header disagrees with manifest"),
                    ));
                }
                if std::fs::metadata(&path).map(|md| md.len()).ok() != Some(m.file_bytes) {
                    return Err(shard_err(spec.index, format!("{name}: size mismatch")));
                }
                artifact_bytes += m.file_bytes;
                // one pass over the rows of either format: per-row
                // lengths against the closed form, strict column order
                // (for v2 this also proves every varint decodes), and
                // the content checksum
                let mut hash = StreamHash::default();
                let mut lengths = product.row_lengths_in_rows(spec.stats.rows.clone());
                for (p, row) in reader.rows() {
                    let want = lengths.next().unwrap_or(0);
                    if row.len() as u64 != want {
                        return Err(shard_err(
                            spec.index,
                            format!(
                                "{name}: row {p} has {} entries, closed form says {want}",
                                row.len()
                            ),
                        ));
                    }
                    let mut prev: Option<u64> = None;
                    for &q in row.iter() {
                        if prev.is_some_and(|pq| pq >= q) {
                            return Err(shard_err(
                                spec.index,
                                format!("{name}: row {p} columns not strictly ascending"),
                            ));
                        }
                        prev = Some(q);
                        hash.update(p, q);
                    }
                }
                if hash != m.hash {
                    return Err(shard_err(
                        spec.index,
                        format!("{name}: content checksum mismatch"),
                    ));
                }
            }
        }

        if rehash {
            let regen = StreamHash::of(product.adjacency_entries_in_rows(spec.stats.rows.clone()));
            if regen != m.hash {
                return Err(shard_err(
                    spec.index,
                    "regenerated stream checksum disagrees with manifest".into(),
                ));
            }
        }
    }

    if total_entries != product.nnz() {
        return Err(StreamError::Manifest(format!(
            "shard entries sum to {total_entries}, product nnz is {}",
            product.nnz()
        )));
    }
    if total_triangle_sum != product.total_triangle_participation() {
        return Err(StreamError::Manifest(format!(
            "shard triangle sums total {total_triangle_sum}, closed form says {}",
            product.total_triangle_participation()
        )));
    }
    if total_entries != run.total_entries {
        return Err(StreamError::Manifest(
            "run.json total_entries disagrees with shard manifests".into(),
        ));
    }

    Ok(VerifyReport {
        shards: run.shards,
        total_entries,
        artifact_bytes,
        rehashed: rehash,
    })
}
