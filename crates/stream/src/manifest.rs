//! Shard manifests and the run summary: the validation metadata that makes
//! every shard independently checkable and a partial run resumable.

use crate::json::Json;
use kron::RowBlockStats;
use std::io;
use std::path::Path;

/// Artifact format of a stream run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputFormat {
    /// Binary edge list: fixed-width little-endian `u64` pairs.
    Edges,
    /// On-disk CSR, raw `u64` columns (see [`crate::csr`]).
    Csr,
    /// On-disk CSR v2, varint delta-encoded columns (see [`crate::csr`]).
    Csr2,
    /// No artifact — manifests and closed-form statistics only.
    Count,
}

impl OutputFormat {
    /// Canonical name, as written in manifests and accepted by the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            OutputFormat::Edges => "edges",
            OutputFormat::Csr => "csr",
            OutputFormat::Csr2 => "csr2",
            OutputFormat::Count => "count",
        }
    }

    /// Parse a canonical name.
    ///
    /// # Errors
    ///
    /// A message naming the unrecognized format and the accepted set.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "edges" => Ok(OutputFormat::Edges),
            "csr" => Ok(OutputFormat::Csr),
            "csr2" => Ok(OutputFormat::Csr2),
            "count" => Ok(OutputFormat::Count),
            other => Err(format!(
                "unknown format {other:?} (expected edges, csr, csr2, or count)"
            )),
        }
    }

    /// Artifact file name for one shard, `None` for [`OutputFormat::Count`].
    pub fn artifact_name(self, shard: usize) -> Option<String> {
        match self {
            OutputFormat::Edges => Some(format!("shard_{shard:05}.edges")),
            OutputFormat::Csr => Some(format!("shard_{shard:05}.csr")),
            OutputFormat::Csr2 => Some(format!("shard_{shard:05}.csr2")),
            OutputFormat::Count => None,
        }
    }

    /// On-disk format version declared in manifests: 2 for [`Csr2`],
    /// 1 for everything else.
    ///
    /// [`Csr2`]: OutputFormat::Csr2
    pub fn version(self) -> u64 {
        match self {
            OutputFormat::Csr2 => 2,
            _ => 1,
        }
    }
}

/// Manifest file name for one shard.
pub fn manifest_name(shard: usize) -> String {
    format!("shard_{shard:05}.json")
}

/// Order-independent 128-bit-ish checksum of an entry stream, kept as two
/// 64-bit words (wrapping sum and xor of a mixed per-entry fingerprint).
///
/// Commutative combination means the checksum of a shard is the same
/// whether computed at generation time, from the artifact, or by
/// re-streaming — regardless of entry order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamHash {
    /// Wrapping sum of entry fingerprints.
    pub sum: u64,
    /// Xor of entry fingerprints.
    pub xor: u64,
}

impl StreamHash {
    /// Fold one entry into the checksum.
    #[inline]
    pub fn update(&mut self, p: u64, q: u64) {
        let h = mix(p ^ mix(q));
        self.sum = self.sum.wrapping_add(h);
        self.xor ^= h;
    }

    /// Checksum of a whole entry iterator.
    pub fn of(entries: impl Iterator<Item = (u64, u64)>) -> StreamHash {
        let mut h = StreamHash::default();
        for (p, q) in entries {
            h.update(p, q);
        }
        h
    }
}

/// SplitMix64 finalizer — the per-entry fingerprint mixer.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-shard manifest: the shard's identity, its artifact, and both the
/// closed-form expected statistics and the observed stream checksum.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Shard index.
    pub shard: usize,
    /// Left-factor rows `[lo, hi)`.
    pub rows: std::ops::Range<u32>,
    /// Product vertices `[lo, hi)`.
    pub vertices: std::ops::Range<u64>,
    /// Artifact format.
    pub format: OutputFormat,
    /// Artifact file name (relative to the run directory), if any.
    pub file: Option<String>,
    /// Artifact size in bytes (0 when no artifact).
    pub file_bytes: u64,
    /// Adjacency entries in the shard (observed == closed form).
    pub entries: u128,
    /// Self loops in the shard.
    pub self_loops: u128,
    /// Closed-form degree sum over the shard's vertices.
    pub degree_sum: u128,
    /// Closed-form triangle-participation sum over the shard's vertices.
    pub triangle_sum: u128,
    /// Order-independent checksum of the generated entry stream.
    pub hash: StreamHash,
}

impl ShardManifest {
    /// Whether this manifest's closed-form fields match an expectation
    /// recomputed from the factors.
    ///
    /// # Errors
    ///
    /// A message naming the first field (range or closed-form statistic)
    /// that disagrees with the expectation, and the shard index.
    pub fn matches_stats(&self, expect: &RowBlockStats) -> Result<(), String> {
        let check = |name: &str, got: u128, want: u128| {
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "shard {}: {name} is {got}, closed form says {want}",
                    self.shard
                ))
            }
        };
        if self.rows != expect.rows {
            return Err(format!(
                "shard {}: rows {:?} != planned {:?}",
                self.shard, self.rows, expect.rows
            ));
        }
        if self.vertices != expect.vertices {
            return Err(format!(
                "shard {}: vertices {:?} != planned {:?}",
                self.shard, self.vertices, expect.vertices
            ));
        }
        check("entries", self.entries, expect.nnz)?;
        check("self_loops", self.self_loops, expect.self_loops)?;
        check("degree_sum", self.degree_sum, expect.degree_sum)?;
        check("triangle_sum", self.triangle_sum, expect.triangle_sum)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shard", Json::num(self.shard)),
            ("row_lo", Json::num(self.rows.start)),
            ("row_hi", Json::num(self.rows.end)),
            ("vertex_lo", Json::num(self.vertices.start)),
            ("vertex_hi", Json::num(self.vertices.end)),
            ("format", Json::str(self.format.as_str())),
            ("version", Json::num(self.format.version())),
            (
                "file",
                match &self.file {
                    Some(f) => Json::str(f),
                    None => Json::Null,
                },
            ),
            ("file_bytes", Json::num(self.file_bytes)),
            ("entries", Json::num(self.entries)),
            ("self_loops", Json::num(self.self_loops)),
            ("degree_sum", Json::num(self.degree_sum)),
            ("triangle_sum", Json::num(self.triangle_sum)),
            ("hash_sum", Json::num(self.hash.sum)),
            ("hash_xor", Json::num(self.hash.xor)),
        ])
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped key.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let u128of = |key: &str| -> Result<u128, String> {
            j.req(key)?
                .as_u128()
                .ok_or_else(|| format!("{key} is not an integer"))
        };
        let u64of = |key: &str| -> Result<u64, String> {
            j.req(key)?
                .as_u64()
                .ok_or_else(|| format!("{key} is not an integer"))
        };
        let format =
            OutputFormat::parse(j.req("format")?.as_str().ok_or("format is not a string")?)?;
        // `version` arrived with csr2; manifests written before it are
        // implicitly version 1. When present it must agree with `format`.
        if let Some(v) = j.get("version") {
            let v = v.as_u64().ok_or("version is not an integer")?;
            if v != format.version() {
                return Err(format!(
                    "version {v} contradicts format {:?} (expected {})",
                    format.as_str(),
                    format.version()
                ));
            }
        }
        let file = match j.req("file")? {
            Json::Null => None,
            v => Some(v.as_str().ok_or("file is not a string")?.to_string()),
        };
        Ok(ShardManifest {
            shard: j
                .req("shard")?
                .as_usize()
                .ok_or("shard is not an integer")?,
            rows: {
                let u32of = |key: &str| -> Result<u32, String> {
                    u32::try_from(u64of(key)?).map_err(|_| format!("{key} exceeds u32"))
                };
                u32of("row_lo")?..u32of("row_hi")?
            },
            vertices: u64of("vertex_lo")?..u64of("vertex_hi")?,
            format,
            file,
            file_bytes: u64of("file_bytes")?,
            entries: u128of("entries")?,
            self_loops: u128of("self_loops")?,
            degree_sum: u128of("degree_sum")?,
            triangle_sum: u128of("triangle_sum")?,
            hash: StreamHash {
                sum: u64of("hash_sum")?,
                xor: u64of("hash_xor")?,
            },
        })
    }
}

/// The run summary written as `run.json`: factors, plan shape, and totals.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Number of shards.
    pub shards: usize,
    /// Artifact format.
    pub format: OutputFormat,
    /// Left/right factor orders.
    pub n_a: u64,
    /// Right factor order.
    pub n_b: u64,
    /// Left/right factor adjacency nnz.
    pub nnz_a: u64,
    /// Right factor adjacency nnz.
    pub nnz_b: u64,
    /// Total adjacency entries — `nnz_a · nnz_b` exactly.
    pub total_entries: u128,
    /// Total triangle participation (`3·τ(C)`).
    pub total_triangle_sum: u128,
    /// Factor edge-list file names inside the run directory.
    pub factor_a: String,
    /// Right factor edge-list file name.
    pub factor_b: String,
    /// Worker threads used.
    pub threads: usize,
    /// Wall seconds of the generation phase.
    pub elapsed_secs: f64,
    /// Shards skipped because a valid manifest already existed.
    pub resumed_shards: usize,
}

impl RunSummary {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("magic", Json::str("kron-stream-run")),
            ("shards", Json::num(self.shards)),
            ("format", Json::str(self.format.as_str())),
            ("n_a", Json::num(self.n_a)),
            ("n_b", Json::num(self.n_b)),
            ("nnz_a", Json::num(self.nnz_a)),
            ("nnz_b", Json::num(self.nnz_b)),
            ("total_entries", Json::num(self.total_entries)),
            ("total_triangle_sum", Json::num(self.total_triangle_sum)),
            ("factor_a", Json::str(&self.factor_a)),
            ("factor_b", Json::str(&self.factor_b)),
            ("threads", Json::num(self.threads)),
            ("elapsed_secs", Json::num(self.elapsed_secs)),
            ("resumed_shards", Json::num(self.resumed_shards)),
        ])
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped key, or a document whose
    /// `magic` is not `"kron-stream-run"`.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        if j.req("magic")?.as_str() != Some("kron-stream-run") {
            return Err("not a kron-stream run.json".into());
        }
        let u64of = |key: &str| -> Result<u64, String> {
            j.req(key)?
                .as_u64()
                .ok_or_else(|| format!("{key} is not an integer"))
        };
        Ok(RunSummary {
            shards: u64of("shards")? as usize,
            format: OutputFormat::parse(
                j.req("format")?.as_str().ok_or("format is not a string")?,
            )?,
            n_a: u64of("n_a")?,
            n_b: u64of("n_b")?,
            nnz_a: u64of("nnz_a")?,
            nnz_b: u64of("nnz_b")?,
            total_entries: j
                .req("total_entries")?
                .as_u128()
                .ok_or("total_entries is not an integer")?,
            total_triangle_sum: j
                .req("total_triangle_sum")?
                .as_u128()
                .ok_or("total_triangle_sum is not an integer")?,
            factor_a: j
                .req("factor_a")?
                .as_str()
                .ok_or("factor_a is not a string")?
                .to_string(),
            factor_b: j
                .req("factor_b")?
                .as_str()
                .ok_or("factor_b is not a string")?
                .to_string(),
            threads: u64of("threads")? as usize,
            elapsed_secs: j
                .req("elapsed_secs")?
                .as_f64()
                .ok_or("elapsed_secs is not a number")?,
            resumed_shards: u64of("resumed_shards")? as usize,
        })
    }
}

/// Write a JSON document atomically (`.tmp` + rename).
///
/// # Errors
///
/// Any I/O error from the write or the rename.
pub fn write_json_atomic(dir: &Path, name: &str, doc: &Json) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, format!("{doc}\n"))?;
    std::fs::rename(&tmp, dir.join(name))
}

/// Read and parse a JSON document. Every error — missing file, unreadable
/// file, parse failure — names the offending path, so a multi-shard
/// directory failure is never ambiguous about which manifest it means.
///
/// # Errors
///
/// Any read failure, or `InvalidData` for unparseable JSON — both name
/// the offending path.
pub fn read_json(path: &Path) -> io::Result<Json> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    Json::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            shard: 3,
            rows: 16..32,
            vertices: 160..320,
            format: OutputFormat::Csr,
            file: Some("shard_00003.csr".into()),
            file_bytes: 4096,
            entries: u128::MAX / 7,
            self_loops: 12,
            degree_sum: u128::MAX / 7 - 12,
            triangle_sum: 99,
            hash: StreamHash {
                sum: 0xDEAD_BEEF,
                xor: 0xFEED_FACE,
            },
        }
    }

    #[test]
    fn manifest_json_roundtrip() {
        let m = sample();
        let j = m.to_json();
        let back = ShardManifest::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_rejects_row_range_beyond_u32() {
        let mut j = sample().to_json();
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "row_lo" {
                    *v = Json::num(1u64 << 32);
                }
            }
        }
        let err = ShardManifest::from_json(&j).unwrap_err();
        assert!(err.contains("row_lo"), "{err}");
    }

    #[test]
    fn count_manifest_has_null_file() {
        let mut m = sample();
        m.format = OutputFormat::Count;
        m.file = None;
        m.file_bytes = 0;
        let back =
            ShardManifest::from_json(&Json::parse(&m.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.file, None);
    }

    #[test]
    fn run_summary_roundtrip() {
        let s = RunSummary {
            shards: 8,
            format: OutputFormat::Edges,
            n_a: 1024,
            n_b: 1024,
            nnz_a: 32768,
            nnz_b: 32768,
            total_entries: 32768u128 * 32768,
            total_triangle_sum: 123456789,
            factor_a: "factor_a.tsv".into(),
            factor_b: "factor_b.tsv".into(),
            threads: 16,
            elapsed_secs: 1.25,
            resumed_shards: 0,
        };
        let back = RunSummary::from_json(&Json::parse(&s.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn stream_hash_is_order_independent_and_sensitive() {
        let entries = [(1u64, 2u64), (3, 4), (5, 6)];
        let fwd = StreamHash::of(entries.iter().copied());
        let rev = StreamHash::of(entries.iter().rev().copied());
        assert_eq!(fwd, rev);
        let tampered = StreamHash::of(vec![(1u64, 2u64), (3, 4), (5, 7)].into_iter());
        assert_ne!(fwd, tampered);
        // (p, q) is not (q, p)
        let swapped = StreamHash::of(vec![(2u64, 1u64), (4, 3), (6, 5)].into_iter());
        assert_ne!(fwd, swapped);
    }

    #[test]
    fn format_parse_roundtrip() {
        for f in [
            OutputFormat::Edges,
            OutputFormat::Csr,
            OutputFormat::Csr2,
            OutputFormat::Count,
        ] {
            assert_eq!(OutputFormat::parse(f.as_str()).unwrap(), f);
        }
        let err = OutputFormat::parse("parquet").unwrap_err();
        assert!(
            err.contains("edges, csr, csr2, or count"),
            "error must name the accepted set: {err}"
        );
        assert_eq!(
            OutputFormat::Edges.artifact_name(7).unwrap(),
            "shard_00007.edges"
        );
        assert_eq!(
            OutputFormat::Csr2.artifact_name(7).unwrap(),
            "shard_00007.csr2"
        );
        assert_eq!(OutputFormat::Count.artifact_name(7), None);
        assert_eq!(manifest_name(7), "shard_00007.json");
        assert_eq!(OutputFormat::Csr.version(), 1);
        assert_eq!(OutputFormat::Csr2.version(), 2);
    }

    #[test]
    fn manifest_version_tracks_format_and_rejects_contradiction() {
        let m = sample();
        let j = m.to_json();
        assert_eq!(j.get("version").and_then(Json::as_u64), Some(1));
        // a pre-version manifest (no `version` key) still parses
        let mut pairs = match Json::parse(&j.to_string()).unwrap() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!(),
        };
        pairs.retain(|(k, _)| k != "version");
        assert_eq!(ShardManifest::from_json(&Json::Obj(pairs)).unwrap(), m);
        // a version that contradicts the format is rejected
        let mut j = m.to_json();
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "version" {
                    *v = Json::num(2u64);
                }
            }
        }
        let err = ShardManifest::from_json(&j).unwrap_err();
        assert!(err.contains("version 2 contradicts"), "{err}");
    }
}
