//! Lossless conversion between graphs and `kron_sparse::CsrMatrix`.
//!
//! Every statistic in the workspace is checked against its linear-algebra
//! definition; these conversions are the bridge.

use crate::{DiGraph, Graph};
use kron_sparse::CsrMatrix;

impl Graph {
    /// The adjacency matrix with unit values (`A ∈ 𝔹^{n×n}` in the paper).
    pub fn to_csr(&self) -> CsrMatrix<u64> {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for v in 0..n as u32 {
            offsets.push(offsets.last().unwrap() + self.adj_row(v).len());
        }
        CsrMatrix::try_from_parts(
            n,
            n,
            offsets,
            self.neighbor_array().to_vec(),
            vec![1; self.neighbor_array().len()],
        )
        .expect("graph adjacency is valid CSR")
    }

    /// The adjacency matrix with signed values, for formulas that subtract.
    pub fn to_csr_i64(&self) -> CsrMatrix<i64> {
        self.to_csr().map_values(|v| v as i64)
    }

    /// Reconstruct a graph from a symmetric 0/1 pattern.
    ///
    /// # Panics
    /// Panics if the matrix is not square or not symmetric in pattern.
    pub fn from_csr<T: kron_sparse::Scalar>(m: &CsrMatrix<T>) -> Self {
        assert_eq!(m.nrows(), m.ncols(), "adjacency must be square");
        let mut edges = Vec::with_capacity(m.nnz());
        for (i, j, _) in m.iter() {
            assert!(m.get(j, i) != T::ZERO, "pattern not symmetric at ({i},{j})");
            if i <= j {
                edges.push((i as u32, j as u32));
            }
        }
        Graph::from_edges(m.nrows(), edges)
    }
}

impl DiGraph {
    /// The (possibly nonsymmetric) adjacency matrix with unit values.
    pub fn to_csr(&self) -> CsrMatrix<u64> {
        CsrMatrix::from_triplets(
            self.num_vertices(),
            self.num_vertices(),
            self.arcs().map(|(u, v)| (u as usize, v as usize, 1u64)),
        )
    }

    /// Reconstruct a digraph from any non-zero pattern.
    pub fn from_csr<T: kron_sparse::Scalar>(m: &CsrMatrix<T>) -> Self {
        assert_eq!(m.nrows(), m.ncols(), "adjacency must be square");
        DiGraph::from_arcs(m.nrows(), m.iter().map(|(i, j, _)| (i as u32, j as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_roundtrip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 3)]);
        let m = g.to_csr();
        assert_eq!(m.nnz() as u64, g.nnz());
        assert!(m.is_symmetric());
        assert_eq!(Graph::from_csr(&m), g);
    }

    #[test]
    fn degree_matches_matrix_row_sums_after_loop_removal() {
        let g = Graph::from_edges(3, [(0, 0), (0, 1), (1, 2)]);
        let m = g.to_csr();
        // d_A = (A − I∘A)·1
        let d = m.drop_diagonal().row_sums();
        assert_eq!(d, g.degree_vector());
    }

    #[test]
    fn digraph_roundtrip() {
        let d = DiGraph::from_arcs(3, [(0, 1), (1, 0), (1, 2)]);
        let m = d.to_csr();
        assert_eq!(m.nnz() as u64, d.num_arcs());
        assert!(!m.is_symmetric());
        assert_eq!(DiGraph::from_csr(&m), d);
    }

    #[test]
    fn reciprocal_part_matches_hadamard_transpose() {
        // A_r = Aᵗ ∘ A (Def. 9)
        let d = DiGraph::from_arcs(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (0, 3)]);
        let a = d.to_csr();
        let ar = a.transpose().hadamard_mul(&a);
        assert_eq!(ar, d.reciprocal_part().to_csr());
        // A_d = A − A_r: check pattern partition
        let ad = d.directed_part().to_csr();
        assert_eq!(ar.add(&ad), a);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_pattern_rejected() {
        let m = CsrMatrix::<u64>::from_triplets(2, 2, [(0, 1, 1)]);
        let _ = Graph::from_csr(&m);
    }
}
