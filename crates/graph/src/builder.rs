//! Incremental construction of undirected graphs with deduplication.

use crate::Graph;

/// Accumulates edges and produces a well-formed [`Graph`].
///
/// Both orientations of each edge are generated automatically; duplicates
/// (in any orientation) collapse at [`GraphBuilder::build`] time. Self loops
/// are stored once.
pub struct GraphBuilder {
    n: usize,
    /// Directed half-edges; loops appear once.
    pairs: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            pairs: Vec::new(),
        }
    }

    /// A builder expecting roughly `m` edges (preallocates).
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self {
            n,
            pairs: Vec::with_capacity(2 * m),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Add the undirected edge `{u, v}` (a loop if `u == v`).
    ///
    /// # Panics
    /// Panics if an endpoint is out of bounds.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of bounds for {} vertices",
            self.n
        );
        self.pairs.push((u, v));
        if u != v {
            self.pairs.push((v, u));
        }
    }

    /// Current number of accumulated half-edges (before dedup).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Sort, deduplicate, and produce the CSR graph.
    pub fn build(mut self) -> Graph {
        self.pairs.sort_unstable();
        self.pairs.dedup();
        let mut offsets = vec![0usize; self.n + 1];
        for &(u, _) in &self.pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let mut loops = 0u64;
        let neighbors: Vec<u32> = self
            .pairs
            .iter()
            .map(|&(u, v)| {
                if u == v {
                    loops += 1;
                }
                v
            })
            .collect();
        let nnz = neighbors.len() as u64;
        Graph::from_sorted_parts(offsets, neighbors, (nnz - loops) / 2, loops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_symmetry() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0) && g.has_edge(0, 1));
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn loops_stored_once() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.num_self_loops(), 1);
        assert_eq!(g.adj_row(1), &[1]);
    }

    #[test]
    fn capacity_and_len() {
        let mut b = GraphBuilder::with_capacity(4, 10);
        assert!(b.is_empty());
        b.add_edge(0, 3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.num_vertices(), 4);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }
}
