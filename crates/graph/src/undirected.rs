//! The undirected graph type: CSR adjacency with sorted neighbor rows.

use crate::GraphBuilder;

/// An undirected graph (possibly with self loops) stored as a symmetric CSR
/// adjacency structure.
///
/// Invariants:
/// * each neighbor row is sorted and duplicate-free;
/// * adjacency is symmetric: `v ∈ N(u) ⇔ u ∈ N(v)`;
/// * a self loop appears exactly once in its own row.
///
/// Terminology follows the paper: the **degree** of `v` is the number of
/// non-loop incident edges (`d_A = (A − I∘A)·1`), [`Graph::num_edges`] is the
/// number of undirected non-loop edges (each counted once), and
/// [`Graph::nnz`] is the number of adjacency-matrix non-zeros
/// (`2·num_edges + num_self_loops`).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    pub(crate) offsets: Vec<usize>,
    pub(crate) neighbors: Vec<u32>,
    pub(crate) num_edges: u64,
    pub(crate) num_self_loops: u64,
}

impl Graph {
    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            num_edges: 0,
            num_self_loops: 0,
        }
    }

    /// Build from an edge iterator; duplicates (in either orientation) are
    /// merged, both orientations are stored, self loops are allowed.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    pub(crate) fn from_sorted_parts(
        offsets: Vec<usize>,
        neighbors: Vec<u32>,
        num_edges: u64,
        num_self_loops: u64,
    ) -> Self {
        let g = Self {
            offsets,
            neighbors,
            num_edges,
            num_self_loops,
        };
        debug_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        g
    }

    /// Verify the structural invariants documented on the type.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.offsets.len() != n + 1 || self.offsets[0] != 0 {
            return Err("bad offsets header".into());
        }
        if *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err("offsets[last] != neighbors.len()".into());
        }
        let mut loops = 0u64;
        for v in 0..n {
            let row = self.adj_row(v as u32);
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {v} not strictly increasing"));
                }
            }
            for &u in row {
                if u as usize >= n {
                    return Err(format!("row {v} neighbor {u} out of bounds"));
                }
                if u == v as u32 {
                    loops += 1;
                } else if !self.has_edge(u, v as u32) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        if loops != self.num_self_loops {
            return Err(format!(
                "self-loop count mismatch: stored {} actual {loops}",
                self.num_self_loops
            ));
        }
        let nnz = self.neighbors.len() as u64;
        if nnz != 2 * self.num_edges + self.num_self_loops {
            return Err(format!(
                "edge count mismatch: nnz {nnz} != 2*{} + {}",
                self.num_edges, self.num_self_loops
            ));
        }
        Ok(())
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected non-loop edges, each counted once (`|E_A|` for a
    /// loop-free graph).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Number of self loops.
    #[inline]
    pub fn num_self_loops(&self) -> u64 {
        self.num_self_loops
    }

    /// Number of adjacency-matrix non-zeros: `2·num_edges + num_self_loops`.
    #[inline]
    pub fn nnz(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// The full adjacency row of `v` (sorted; includes `v` itself if `v` has
    /// a self loop).
    #[inline]
    pub fn adj_row(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Neighbors of `v` excluding a self loop, as an iterator.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj_row(v).iter().copied().filter(move |&u| u != v)
    }

    /// Degree of `v` in the paper's sense: incident non-loop edges.
    #[inline]
    pub fn degree(&self, v: u32) -> u64 {
        (self.adj_row(v).len() - usize::from(self.has_self_loop(v))) as u64
    }

    /// Length of the adjacency row (degree plus one if there is a loop).
    #[inline]
    pub fn row_len(&self, v: u32) -> u64 {
        self.adj_row(v).len() as u64
    }

    /// Whether the undirected edge `{u, v}` (or the loop if `u == v`) exists.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj_row(u).binary_search(&v).is_ok()
    }

    /// Whether `v` has a self loop.
    #[inline]
    pub fn has_self_loop(&self, v: u32) -> bool {
        self.has_edge(v, v)
    }

    /// Position of `v` within `u`'s adjacency row, if the edge exists.
    ///
    /// The returned value is a *global slot* into the flat neighbor array,
    /// usable to index per-adjacency-entry statistic arrays (e.g. the edge
    /// triangle participation `Δ` values).
    #[inline]
    pub fn edge_slot(&self, u: u32, v: u32) -> Option<usize> {
        self.adj_row(u)
            .binary_search(&v)
            .ok()
            .map(|pos| self.offsets[u as usize] + pos)
    }

    /// The CSR row-offset array (length `n + 1`), for slot arithmetic.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat neighbor array, parallel to any per-slot statistic vector.
    #[inline]
    pub fn neighbor_array(&self) -> &[u32] {
        &self.neighbors
    }

    /// Iterate over undirected non-loop edges, each once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32).flat_map(move |u| {
            self.adj_row(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterate over all adjacency entries `(u, v)` — both orientations of
    /// every edge plus each self loop once. This is the non-zero pattern of
    /// the adjacency matrix, the unit the Kronecker generator streams over.
    pub fn adjacency_entries(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |u| self.adj_row(u).iter().copied().map(move |v| (u, v)))
    }

    /// Vertices that have a self loop.
    pub fn self_loops(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.num_vertices() as u32).filter(move |&v| self.has_self_loop(v))
    }

    /// The degree vector `d_A` (loops excluded, per the paper).
    pub fn degree_vector(&self) -> Vec<u64> {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .collect()
    }

    /// Maximum degree `‖d_A‖_∞`.
    pub fn max_degree(&self) -> u64 {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Degree histogram: `degree → vertex count` (the factor-side input to
    /// the §III-A product-distribution derivations).
    pub fn degree_histogram(&self) -> std::collections::BTreeMap<u64, u64> {
        let mut h = std::collections::BTreeMap::new();
        for v in 0..self.num_vertices() as u32 {
            *h.entry(self.degree(v)).or_insert(0) += 1;
        }
        h
    }

    /// A copy with a self loop added at every vertex: `B = A + I` (the
    /// construction used in the paper's §VI experiment).
    pub fn with_all_self_loops(&self) -> Self {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.neighbors.len() + n);
        offsets.push(0);
        for v in 0..n as u32 {
            let row = self.adj_row(v);
            match row.binary_search(&v) {
                Ok(_) => neighbors.extend_from_slice(row),
                Err(pos) => {
                    neighbors.extend_from_slice(&row[..pos]);
                    neighbors.push(v);
                    neighbors.extend_from_slice(&row[pos..]);
                }
            }
            offsets.push(neighbors.len());
        }
        Self::from_sorted_parts(offsets, neighbors, self.num_edges, n as u64)
    }

    /// A copy with self loops added at the listed vertices (duplicates and
    /// existing loops are fine) — the per-vertex triangle *tuning* knob of
    /// the paper's Rem. 1/Rem. 3: a loop at `k` in factor `B` boosts
    /// `t_C` at every product vertex pairing with `k`.
    pub fn with_self_loops_at(&self, vertices: &[u32]) -> Self {
        let n = self.num_vertices();
        let mut want = vec![false; n];
        for &v in vertices {
            assert!((v as usize) < n, "vertex {v} out of bounds");
            want[v as usize] = true;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.neighbors.len() + vertices.len());
        let mut loops = 0u64;
        offsets.push(0);
        for v in 0..n as u32 {
            let row = self.adj_row(v);
            match row.binary_search(&v) {
                Ok(_) => {
                    neighbors.extend_from_slice(row);
                    loops += 1;
                }
                Err(pos) if want[v as usize] => {
                    neighbors.extend_from_slice(&row[..pos]);
                    neighbors.push(v);
                    neighbors.extend_from_slice(&row[pos..]);
                    loops += 1;
                }
                Err(_) => neighbors.extend_from_slice(row),
            }
            offsets.push(neighbors.len());
        }
        Self::from_sorted_parts(offsets, neighbors, self.num_edges, loops)
    }

    /// A copy with every self loop removed (`A − I ∘ A`, Rem. 3).
    pub fn without_self_loops(&self) -> Self {
        if self.num_self_loops == 0 {
            return self.clone();
        }
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.neighbors.len());
        offsets.push(0);
        for v in 0..n as u32 {
            neighbors.extend(self.adj_row(v).iter().copied().filter(|&u| u != v));
            offsets.push(neighbors.len());
        }
        Self::from_sorted_parts(offsets, neighbors, self.num_edges, 0)
    }

    /// A copy without the listed edges (given in either orientation; loops
    /// allowed). Unknown edges are ignored.
    pub fn without_edges(&self, remove: &[(u32, u32)]) -> Self {
        use std::collections::HashSet;
        let mut kill: HashSet<(u32, u32)> = HashSet::with_capacity(remove.len() * 2);
        for &(u, v) in remove {
            kill.insert((u, v));
            kill.insert((v, u));
        }
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.neighbors.len());
        let mut edges = 0u64;
        let mut loops = 0u64;
        offsets.push(0);
        for v in 0..n as u32 {
            for &u in self.adj_row(v) {
                if !kill.contains(&(v, u)) {
                    neighbors.push(u);
                    if u == v {
                        loops += 1;
                    } else if v < u {
                        edges += 1;
                    }
                }
            }
            offsets.push(neighbors.len());
        }
        Self::from_sorted_parts(offsets, neighbors, edges, loops)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, loops={})",
            self.num_vertices(),
            self.num_edges,
            self.num_self_loops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_self_loops(), 0);
        assert_eq!(g.nnz(), 8);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn degrees_and_rows() {
        let g = triangle_plus_tail();
        assert_eq!(g.degree_vector(), vec![2, 2, 3, 1]);
        assert_eq!(g.adj_row(2), &[0, 1, 3]);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn duplicate_and_reversed_edges_merge() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loops_tracked_and_excluded_from_degree() {
        let g = Graph::from_edges(3, [(0, 0), (0, 1), (1, 1), (1, 1)]);
        assert_eq!(g.num_self_loops(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.row_len(1), 2);
        assert!(g.has_self_loop(0));
        assert!(!g.has_self_loop(2));
    }

    #[test]
    fn edges_iterator_each_once() {
        let g = triangle_plus_tail();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn adjacency_entries_count() {
        let g = Graph::from_edges(3, [(0, 0), (0, 1)]);
        let entries: Vec<_> = g.adjacency_entries().collect();
        assert_eq!(entries, vec![(0, 0), (0, 1), (1, 0)]);
        assert_eq!(entries.len() as u64, g.nnz());
    }

    #[test]
    fn with_and_without_loops_roundtrip() {
        let g = triangle_plus_tail();
        let b = g.with_all_self_loops();
        assert_eq!(b.num_self_loops(), 4);
        assert_eq!(b.num_edges(), g.num_edges());
        assert_eq!(b.degree_vector(), g.degree_vector());
        assert_eq!(b.without_self_loops(), g);
        assert!(b.check_invariants().is_ok());
    }

    #[test]
    fn degree_histogram_masses() {
        let g = triangle_plus_tail();
        let h = g.degree_histogram();
        assert_eq!(h[&2], 2);
        assert_eq!(h[&3], 1);
        assert_eq!(h[&1], 1);
        assert_eq!(h.values().sum::<u64>() as usize, g.num_vertices());
    }

    #[test]
    fn selective_loops() {
        let g = triangle_plus_tail();
        let h = g.with_self_loops_at(&[1, 3, 3]);
        assert_eq!(h.num_self_loops(), 2);
        assert!(h.has_self_loop(1) && h.has_self_loop(3));
        assert!(!h.has_self_loop(0));
        assert_eq!(h.num_edges(), g.num_edges());
        assert!(h.check_invariants().is_ok());
        // idempotent on existing loops
        assert_eq!(h.with_self_loops_at(&[1]), h);
        // all vertices = with_all_self_loops
        let all: Vec<u32> = (0..4).collect();
        assert_eq!(g.with_self_loops_at(&all), g.with_all_self_loops());
    }

    #[test]
    fn edge_slots_are_symmetric_pairs() {
        let g = triangle_plus_tail();
        let s1 = g.edge_slot(0, 2).unwrap();
        let s2 = g.edge_slot(2, 0).unwrap();
        assert_ne!(s1, s2);
        assert_eq!(g.neighbor_array()[s1], 2);
        assert_eq!(g.neighbor_array()[s2], 0);
        assert_eq!(g.edge_slot(0, 3), None);
    }

    #[test]
    fn without_edges_removes_both_orientations() {
        let g = triangle_plus_tail();
        let h = g.without_edges(&[(2, 0)]);
        assert_eq!(h.num_edges(), 3);
        assert!(!h.has_edge(0, 2));
        assert!(!h.has_edge(2, 0));
        assert!(h.check_invariants().is_ok());
        // removing a loop works too
        let l = Graph::from_edges(2, [(0, 0), (0, 1)]);
        let l2 = l.without_edges(&[(0, 0)]);
        assert_eq!(l2.num_self_loops(), 0);
        assert_eq!(l2.num_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let _ = Graph::from_edges(2, [(0, 5)]);
    }
}
