//! Vertex-labeled graphs (the paper's §V: `G(V, E, L, f)`).

use crate::Graph;

/// A vertex label ("color" in the paper's Fig. 6). Labels are dense
/// `0..num_labels`.
pub type Label = u16;

/// An undirected graph whose vertices carry labels from `0..num_labels`.
///
/// The labeled Kronecker construction of §V inherits labels from the left
/// factor: `f_C(p) = f_A(α(p))`; see `kron::labeled`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabeledGraph {
    graph: Graph,
    labels: Vec<Label>,
    num_labels: usize,
}

impl LabeledGraph {
    /// Attach labels to a graph.
    ///
    /// # Panics
    /// Panics if `labels.len() != n` or any label is `>= num_labels`.
    pub fn new(graph: Graph, labels: Vec<Label>, num_labels: usize) -> Self {
        assert_eq!(
            labels.len(),
            graph.num_vertices(),
            "one label per vertex required"
        );
        assert!(
            labels.iter().all(|&l| (l as usize) < num_labels),
            "label out of range"
        );
        Self {
            graph,
            labels,
            num_labels,
        }
    }

    /// The underlying unlabeled graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of distinct labels `|L|`.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The label (color) of vertex `v` — the paper's `f(v)`.
    #[inline]
    pub fn label(&self, v: u32) -> Label {
        self.labels[v as usize]
    }

    /// The full label vector.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Vertices carrying label `q` — the support of the paper's filter
    /// `Π_{A,q}` (Def. 12).
    pub fn vertices_with_label(&self, q: Label) -> impl Iterator<Item = u32> + '_ {
        (0..self.graph.num_vertices() as u32).filter(move |&v| self.labels[v as usize] == q)
    }

    /// Histogram of label usage (length `num_labels`).
    pub fn label_histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.num_labels];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        LabeledGraph::new(g, vec![0, 1, 2, 1], 3)
    }

    #[test]
    fn basic_access() {
        let lg = sample();
        assert_eq!(lg.num_labels(), 3);
        assert_eq!(lg.label(2), 2);
        assert_eq!(lg.labels(), &[0, 1, 2, 1]);
        assert_eq!(lg.graph().num_edges(), 4);
    }

    #[test]
    fn filter_support() {
        let lg = sample();
        let ones: Vec<_> = lg.vertices_with_label(1).collect();
        assert_eq!(ones, vec![1, 3]);
        assert_eq!(lg.label_histogram(), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn length_checked() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let _ = LabeledGraph::new(g, vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn range_checked() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let _ = LabeledGraph::new(g, vec![0, 5], 3);
    }
}
