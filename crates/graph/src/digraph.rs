//! Directed graphs with the reciprocal/directed edge decomposition of the
//! paper's §IV (following Seshadhri et al.'s directed-closure model).

use crate::Graph;

/// How an arc set relates a concrete ordered pair `(u, v)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Both `u→v` and `v→u` exist (an edge of `A_r`).
    Reciprocal,
    /// Only `u→v` exists (an edge of `A_d`, seen from its source).
    Out,
    /// Only `v→u` exists (an edge of `A_d`, seen from its target).
    In,
}

/// A directed graph stored as paired out-/in-adjacency CSR structures.
///
/// Both neighbor rows are sorted and duplicate-free. [`DiGraph::num_arcs`]
/// counts adjacency-matrix non-zeros (each directed arc once; a reciprocal
/// pair contributes two; a self loop one).
#[derive(Clone, PartialEq, Eq)]
pub struct DiGraph {
    out_offsets: Vec<usize>,
    out_neighbors: Vec<u32>,
    in_offsets: Vec<usize>,
    in_neighbors: Vec<u32>,
    num_arcs: u64,
    num_self_loops: u64,
}

impl DiGraph {
    /// A digraph with `n` vertices and no arcs.
    pub fn empty(n: usize) -> Self {
        Self {
            out_offsets: vec![0; n + 1],
            out_neighbors: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_neighbors: Vec::new(),
            num_arcs: 0,
            num_self_loops: 0,
        }
    }

    /// Build from an arc iterator `(src, dst)`; duplicates are merged.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_arcs<I>(n: usize, arcs: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut pairs: Vec<(u32, u32)> = arcs
            .into_iter()
            .inspect(|&(u, v)| {
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "arc ({u},{v}) out of bounds for {n} vertices"
                );
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();

        let mut out_offsets = vec![0usize; n + 1];
        let mut in_offsets = vec![0usize; n + 1];
        let mut loops = 0u64;
        for &(u, v) in &pairs {
            out_offsets[u as usize + 1] += 1;
            in_offsets[v as usize + 1] += 1;
            if u == v {
                loops += 1;
            }
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let out_neighbors: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        let mut in_neighbors = vec![0u32; pairs.len()];
        let mut next = in_offsets.clone();
        for &(u, v) in &pairs {
            in_neighbors[next[v as usize]] = u;
            next[v as usize] += 1;
        }
        Self {
            out_offsets,
            out_neighbors,
            in_offsets,
            in_neighbors,
            num_arcs: pairs.len() as u64,
            num_self_loops: loops,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of stored arcs (adjacency non-zeros).
    #[inline]
    pub fn num_arcs(&self) -> u64 {
        self.num_arcs
    }

    /// Number of self loops.
    #[inline]
    pub fn num_self_loops(&self) -> u64 {
        self.num_self_loops
    }

    /// Out-neighbors of `v` (sorted).
    #[inline]
    pub fn out_row(&self, v: u32) -> &[u32] {
        &self.out_neighbors[self.out_offsets[v as usize]..self.out_offsets[v as usize + 1]]
    }

    /// In-neighbors of `v` (sorted).
    #[inline]
    pub fn in_row(&self, v: u32) -> &[u32] {
        &self.in_neighbors[self.in_offsets[v as usize]..self.in_offsets[v as usize + 1]]
    }

    /// Out-degree `(A·1)_v` — counts a self loop.
    #[inline]
    pub fn out_degree(&self, v: u32) -> u64 {
        self.out_row(v).len() as u64
    }

    /// In-degree `(Aᵗ·1)_v` — counts a self loop.
    #[inline]
    pub fn in_degree(&self, v: u32) -> u64 {
        self.in_row(v).len() as u64
    }

    /// Whether the arc `u→v` exists.
    #[inline]
    pub fn has_arc(&self, u: u32, v: u32) -> bool {
        self.out_row(u).binary_search(&v).is_ok()
    }

    /// Classify the ordered pair `(u, v)` (Def. 8 of the paper).
    pub fn edge_kind(&self, u: u32, v: u32) -> Option<EdgeKind> {
        match (self.has_arc(u, v), self.has_arc(v, u)) {
            (true, true) => Some(EdgeKind::Reciprocal),
            (true, false) => Some(EdgeKind::Out),
            (false, true) => Some(EdgeKind::In),
            (false, false) => None,
        }
    }

    /// Iterate over all arcs `(src, dst)`.
    pub fn arcs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |u| self.out_row(u).iter().copied().map(move |v| (u, v)))
    }

    /// Whether every arc is reciprocated (the adjacency matrix is symmetric).
    pub fn is_symmetric(&self) -> bool {
        self.arcs().all(|(u, v)| self.has_arc(v, u))
    }

    /// The reciprocal part `A_r = Aᵗ ∘ A` as an *undirected* graph
    /// (Def. 9). Self loops are reciprocal by definition.
    pub fn reciprocal_part(&self) -> Graph {
        Graph::from_edges(
            self.num_vertices(),
            self.arcs().filter(|&(u, v)| u <= v && self.has_arc(v, u)),
        )
    }

    /// The directed (non-reciprocated) part `A_d = A − A_r` (Def. 9).
    pub fn directed_part(&self) -> DiGraph {
        DiGraph::from_arcs(
            self.num_vertices(),
            self.arcs().filter(|&(u, v)| !self.has_arc(v, u)),
        )
    }

    /// The undirected version `A_u = A + A_dᵗ` (Def. 9): forget directions.
    pub fn undirected_closure(&self) -> Graph {
        Graph::from_edges(self.num_vertices(), self.arcs())
    }

    /// Build a digraph from an undirected graph (every edge reciprocal).
    pub fn from_undirected(g: &Graph) -> Self {
        Self::from_arcs(g.num_vertices(), g.adjacency_entries())
    }

    /// Verify structural invariants (sortedness, out/in consistency).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.in_offsets.len() != n + 1 {
            return Err("out/in vertex count mismatch".into());
        }
        if self.out_neighbors.len() != self.in_neighbors.len() {
            return Err("out/in nnz mismatch".into());
        }
        if self.num_arcs != self.out_neighbors.len() as u64 {
            return Err("arc count mismatch".into());
        }
        let mut loops = 0u64;
        for v in 0..n as u32 {
            for row in [self.out_row(v), self.in_row(v)] {
                for w in row.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!("row {v} not strictly increasing"));
                    }
                }
                if let Some(&last) = row.last() {
                    if last as usize >= n {
                        return Err(format!("row {v} neighbor out of bounds"));
                    }
                }
            }
            if self.out_row(v).binary_search(&v).is_ok() {
                loops += 1;
            }
            for &u in self.out_row(v) {
                if self.in_row(u).binary_search(&v).is_err() {
                    return Err(format!("arc ({v},{u}) missing from in-adjacency"));
                }
            }
        }
        if loops != self.num_self_loops {
            return Err("self-loop count mismatch".into());
        }
        Ok(())
    }
}

impl std::fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DiGraph(n={}, arcs={}, loops={})",
            self.num_vertices(),
            self.num_arcs,
            self.num_self_loops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0→1, 1→0 (reciprocal pair), 1→2, 2→0, loop at 3.
    fn sample() -> DiGraph {
        DiGraph::from_arcs(4, [(0, 1), (1, 0), (1, 2), (2, 0), (3, 3)])
    }

    #[test]
    fn counts_and_rows() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 5);
        assert_eq!(g.num_self_loops(), 1);
        assert_eq!(g.out_row(1), &[0, 2]);
        assert_eq!(g.in_row(0), &[1, 2]);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.in_degree(0), 2);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn kinds() {
        let g = sample();
        assert_eq!(g.edge_kind(0, 1), Some(EdgeKind::Reciprocal));
        assert_eq!(g.edge_kind(1, 2), Some(EdgeKind::Out));
        assert_eq!(g.edge_kind(2, 1), Some(EdgeKind::In));
        assert_eq!(g.edge_kind(0, 3), None);
        assert_eq!(g.edge_kind(3, 3), Some(EdgeKind::Reciprocal));
    }

    #[test]
    fn decomposition_partitions_arcs() {
        let g = sample();
        let r = g.reciprocal_part();
        let d = g.directed_part();
        // A = A_r + A_d with disjoint patterns (Def. 9)
        assert_eq!(
            2 * r.num_edges() + r.num_self_loops() + d.num_arcs(),
            g.num_arcs()
        );
        assert!(r.has_edge(0, 1));
        assert!(r.has_self_loop(3));
        assert!(d.has_arc(1, 2) && !d.has_arc(2, 1));
        assert!(d.has_arc(2, 0));
        assert_eq!(d.num_self_loops(), 0);
        // directed part has no reciprocal pair
        for (u, v) in d.arcs() {
            assert!(!d.has_arc(v, u) || u == v);
        }
    }

    #[test]
    fn undirected_closure_forgets_direction() {
        let g = sample();
        let u = g.undirected_closure();
        assert_eq!(u.num_edges(), 3); // {0,1},{1,2},{0,2}
        assert_eq!(u.num_self_loops(), 1);
        assert!(u.has_edge(0, 2));
    }

    #[test]
    fn from_undirected_is_symmetric() {
        let ug = Graph::from_edges(3, [(0, 1), (1, 2), (2, 2)]);
        let dg = DiGraph::from_undirected(&ug);
        assert!(dg.is_symmetric());
        assert_eq!(dg.num_arcs(), ug.nnz());
        assert_eq!(dg.undirected_closure(), ug);
    }

    #[test]
    fn duplicates_merge() {
        let g = DiGraph::from_arcs(2, [(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn empty() {
        let g = DiGraph::empty(3);
        assert_eq!(g.num_arcs(), 0);
        assert!(g.is_symmetric());
        assert!(g.check_invariants().is_ok());
    }
}
