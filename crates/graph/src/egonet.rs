//! Egonet and induced-subgraph extraction.
//!
//! The paper validates its Kronecker formulas "by constructing individual
//! egonets (induced subgraphs of vertex neighborhoods) of vertices in C and
//! comparing the local triangle statistics to those prescribed by the
//! Kronecker formulas" (§VI, Fig. 7). This module supplies the materialized
//! version; `kron::egonet` builds the same object *implicitly* from the
//! factors.

use crate::Graph;

/// An extracted egonet: the induced subgraph on `{center} ∪ N(center)`.
#[derive(Clone, Debug)]
pub struct Egonet {
    /// The induced subgraph, with vertices renumbered `0..k`.
    pub graph: Graph,
    /// `mapping[local]` is the original vertex id.
    pub mapping: Vec<u32>,
    /// The local id of the center vertex.
    pub center: u32,
}

impl Egonet {
    /// Number of triangles through the center = number of edges among the
    /// center's neighbors (valid when the host graph has no self loops).
    pub fn triangles_at_center(&self) -> u64 {
        let nbrs: Vec<u32> = self.graph.neighbors(self.center).collect();
        let mut count = 0u64;
        for (i, &u) in nbrs.iter().enumerate() {
            for &v in &nbrs[i + 1..] {
                if self.graph.has_edge(u, v) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Degree of the center inside the egonet (equals its degree in the
    /// host graph).
    pub fn center_degree(&self) -> u64 {
        self.graph.degree(self.center)
    }
}

/// The induced subgraph on an arbitrary vertex set (duplicates ignored).
/// Returns the subgraph and the local→global mapping, sorted by global id.
pub fn induced_subgraph(g: &Graph, vertices: &[u32]) -> (Graph, Vec<u32>) {
    let mut mapping: Vec<u32> = vertices.to_vec();
    mapping.sort_unstable();
    mapping.dedup();
    let mut local = std::collections::HashMap::with_capacity(mapping.len());
    for (i, &v) in mapping.iter().enumerate() {
        local.insert(v, i as u32);
    }
    let mut edges = Vec::new();
    for (i, &v) in mapping.iter().enumerate() {
        for u in g.adj_row(v) {
            if let Some(&j) = local.get(u) {
                if (j as usize) >= i {
                    edges.push((i as u32, j));
                }
            }
        }
    }
    (Graph::from_edges(mapping.len(), edges), mapping)
}

/// Extract the egonet of `center`: induced subgraph on the closed
/// neighborhood `{center} ∪ N(center)`.
pub fn egonet(g: &Graph, center: u32) -> Egonet {
    let mut verts: Vec<u32> = g.adj_row(center).to_vec();
    if g.adj_row(center).binary_search(&center).is_err() {
        verts.push(center);
    }
    let (graph, mapping) = induced_subgraph(g, &verts);
    let local_center = mapping
        .binary_search(&center)
        .expect("center is in its own egonet") as u32;
    Egonet {
        graph,
        mapping,
        center: local_center,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// K4 plus a pendant vertex 4 attached to 0.
    fn k4_pendant() -> Graph {
        Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)])
    }

    #[test]
    fn egonet_of_hub() {
        let g = k4_pendant();
        let e = egonet(&g, 0);
        assert_eq!(e.mapping, vec![0, 1, 2, 3, 4]);
        assert_eq!(e.center_degree(), 4);
        // triangles at 0: the three pairs among {1,2,3}
        assert_eq!(e.triangles_at_center(), 3);
    }

    #[test]
    fn egonet_of_pendant() {
        let g = k4_pendant();
        let e = egonet(&g, 4);
        assert_eq!(e.mapping, vec![0, 4]);
        assert_eq!(e.center_degree(), 1);
        assert_eq!(e.triangles_at_center(), 0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = k4_pendant();
        let (s, map) = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(map, vec![1, 2, 4]);
        assert_eq!(s.num_edges(), 1); // only {1,2} survives
        assert!(s.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_preserves_loops() {
        let g = Graph::from_edges(3, [(0, 0), (0, 1), (1, 2)]);
        let (s, _) = induced_subgraph(&g, &[0, 1]);
        assert_eq!(s.num_self_loops(), 1);
        assert_eq!(s.num_edges(), 1);
    }

    #[test]
    fn egonet_triangle_count_matches_half_wedge_closure() {
        // center of a 5-star with one closed pair
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 2)]);
        let e = egonet(&g, 0);
        assert_eq!(e.triangles_at_center(), 1);
    }
}
