//! # kron-graph — graph substrate
//!
//! Graph representations and algorithms underpinning the `kron` workspace
//! (reproduction of Sanders et al., *IPDPS 2018*): compact CSR adjacency
//! structures for undirected, directed, and vertex-labeled graphs, plus the
//! supporting machinery the paper's constructions need — builders with
//! deduplication, traversal (BFS / connected components / spanning trees),
//! egonet extraction (the paper's §VI validation methodology), plain-text
//! edge-list I/O, and lossless conversion to/from `kron_sparse::CsrMatrix`
//! so that every statistic can be cross-checked against its linear-algebra
//! definition.
//!
//! ## Conventions
//!
//! * Vertices are `u32` and 0-based (the paper's formulas are 1-based; the
//!   index maps in the `kron` core crate document the shift).
//! * An undirected [`Graph`] stores each edge in both endpoint rows; the
//!   *undirected edge count* [`Graph::num_edges`] counts each once.
//! * Self loops are first-class citizens (Rem. 3 of the paper: loops in the
//!   factors boost triangles in the product): a loop appears once in its
//!   row, is excluded from [`Graph::degree`] (matching `d_A = (A − I∘A)·1`),
//!   and is tracked by [`Graph::num_self_loops`].
//!
//! ## Example
//!
//! ```
//! use kron_graph::Graph;
//!
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(g.degree(2), 3);
//! assert!(g.has_edge(0, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod convert;
mod cores;
mod digraph;
mod egonet;
mod io;
mod labeled;
mod traversal;
mod undirected;
mod unionfind;

pub use builder::GraphBuilder;
pub use cores::{core_decomposition, degeneracy};
pub use digraph::{DiGraph, EdgeKind};
pub use egonet::{egonet, induced_subgraph, Egonet};
pub use io::{read_edge_list, read_edge_list_path, write_edge_list, write_edge_list_path};
pub use labeled::{Label, LabeledGraph};
pub use traversal::{
    bfs_distances, connected_components, is_connected, pseudo_diameter, spanning_tree,
};
pub use undirected::Graph;
pub use unionfind::UnionFind;
