//! k-core decomposition (Matula–Beck bucket peeling).
//!
//! The vertex analogue of the truss decomposition of §III-D, and the
//! standard companion ordering for triangle kernels (several of the
//! paper's cited HPEC implementations orient edges by core number). Self
//! loops are ignored.

use crate::Graph;

/// Core numbers of every vertex: `core[v]` is the largest `k` such that
/// `v` belongs to a subgraph of minimum degree `k`. `O(n + m)`.
pub fn core_decomposition(g: &Graph) -> Vec<u32> {
    let g = g.without_self_loops();
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    // bucket sort vertices by degree
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bin[i + 1] += bin[i];
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0u32; n];
    {
        let mut next = bin.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            order[next[d]] = v as u32;
            pos[v] = next[d];
            next[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    let mut level = 0u32;
    for idx in 0..n {
        let v = order[idx] as usize;
        level = level.max(deg[v]);
        core[v] = level;
        for u in g.neighbors(v as u32) {
            let u = u as usize;
            if deg[u] > deg[v] {
                // move u one bucket down
                let du = deg[u] as usize;
                let first = bin[du];
                let moved = order[first] as usize;
                let pu = pos[u];
                order.swap(first, pu);
                pos[u] = first;
                pos[moved] = pu;
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    core
}

/// The degeneracy of the graph: the maximum core number.
pub fn degeneracy(g: &Graph) -> u32 {
    core_decomposition(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize) -> Graph {
        Graph::from_edges(
            n,
            (0..n as u32).flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j))),
        )
    }

    #[test]
    fn clique_core_is_n_minus_1() {
        for n in 2..=6 {
            let core = core_decomposition(&clique(n));
            assert!(core.iter().all(|&c| c == (n - 1) as u32));
        }
    }

    #[test]
    fn path_and_cycle() {
        let p = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_decomposition(&p), vec![1, 1, 1, 1]);
        let c = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(core_decomposition(&c), vec![2, 2, 2, 2]);
    }

    #[test]
    fn pendant_peels_first() {
        // triangle with a tail: tail vertex core 1, triangle core 2
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(core_decomposition(&g), vec![2, 2, 2, 1]);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn core_is_monotone_under_edge_removal() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .filter(|_| rng.gen_bool(0.4))
            .collect();
        let g = Graph::from_edges(n, edges.clone());
        let core = core_decomposition(&g);
        // drop a random edge: no core number may increase
        if let Some(&e) = edges.first() {
            let h = g.without_edges(&[e]);
            let core2 = core_decomposition(&h);
            for v in 0..n {
                assert!(core2[v] <= core[v]);
            }
        }
        // definition check: the k-core subgraph has min degree ≥ k
        let k = degeneracy(&g);
        let keep: Vec<u32> = (0..n as u32).filter(|&v| core[v as usize] >= k).collect();
        let (sub, _) = crate::induced_subgraph(&g, &keep);
        assert!((0..sub.num_vertices() as u32).all(|v| sub.degree(v) >= k as u64));
    }

    #[test]
    fn loops_ignored() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0), (1, 1)]);
        assert_eq!(core_decomposition(&g), vec![2, 2, 2]);
    }

    #[test]
    fn empty() {
        assert!(core_decomposition(&Graph::empty(0)).is_empty());
        assert_eq!(core_decomposition(&Graph::empty(3)), vec![0, 0, 0]);
    }
}
