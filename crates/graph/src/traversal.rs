//! Breadth-first search, connected components, spanning trees.

use crate::{Graph, UnionFind};
use std::collections::VecDeque;

/// BFS distances from `src`; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(g: &Graph, src: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected components (self loops irrelevant): returns
/// `(component_count, component_id_per_vertex)` with ids dense from 0 in
/// order of smallest contained vertex.
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut ids = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut comp = vec![0u32; n];
    for v in 0..n as u32 {
        let r = uf.find(v) as usize;
        if ids[r] == u32::MAX {
            ids[r] = next;
            next += 1;
        }
        comp[v as usize] = ids[r];
    }
    (next as usize, comp)
}

/// Whether the graph is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).0 <= 1
}

/// Pseudo-diameter by the double-sweep heuristic: BFS from `start`, then
/// BFS again from the farthest vertex found; the second eccentricity is a
/// lower bound on the diameter that is exact on trees and very tight on
/// small-world graphs (the diameter behaviour of Kronecker products is
/// analyzed in the paper's reference \[7\]). Returns `None` when `start`'s
/// component is a single vertex.
pub fn pseudo_diameter(g: &Graph, start: u32) -> Option<u32> {
    let first = bfs_distances(g, start);
    let (far, &d1) = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .max_by_key(|&(_, &d)| d)?;
    if d1 == 0 {
        return None;
    }
    let second = bfs_distances(g, far as u32);
    second.into_iter().filter(|&d| d != u32::MAX).max()
}

/// An arbitrary spanning forest as a list of edges (one tree per
/// component), found by union–find over the edge list. Used by the paper's
/// §III-D strategy (a): edges of a spanning tree are protected while
/// sparsifying triangles.
pub fn spanning_tree(g: &Graph) -> Vec<(u32, u32)> {
    let mut uf = UnionFind::new(g.num_vertices());
    let mut tree = Vec::new();
    for (u, v) in g.edges() {
        if uf.union(u, v) {
            tree.push((u, v));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        // components {0,1,2} and {3,4,5}
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn bfs_path_graph() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = two_triangles();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn components() {
        let (c, ids) = connected_components(&two_triangles());
        assert_eq!(c, 2);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[3], ids[5]);
        assert_ne!(ids[0], ids[3]);
        assert!(!is_connected(&two_triangles()));
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let (c, _) = connected_components(&g);
        assert_eq!(c, 3);
    }

    #[test]
    fn spanning_tree_size() {
        let g = two_triangles();
        let t = spanning_tree(&g);
        assert_eq!(t.len(), 4); // n - #components = 6 - 2
        let forest = Graph::from_edges(6, t);
        let (c, _) = connected_components(&forest);
        assert_eq!(c, 2);
    }

    #[test]
    fn pseudo_diameter_paths_and_cycles() {
        let p = Graph::from_edges(6, (0..5).map(|i| (i, i + 1)));
        assert_eq!(pseudo_diameter(&p, 2), Some(5)); // exact on trees
        let c6 = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        assert_eq!(pseudo_diameter(&c6, 0), Some(3));
        // lower bound property on a random graph
        let g = two_triangles();
        let d = pseudo_diameter(&g, 0).unwrap();
        assert_eq!(d, 1); // within the first triangle
        assert_eq!(pseudo_diameter(&Graph::empty(3), 0), None);
        let k2 = Graph::from_edges(2, [(0, 1)]);
        assert_eq!(pseudo_diameter(&k2, 0), Some(1));
    }

    #[test]
    fn connected_singleton_and_empty() {
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
        assert!(!is_connected(&Graph::empty(2)));
    }
}
