//! Disjoint-set forest with union by rank and path halving.

/// A union–find structure over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets containing `x` and `y`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, x: u32, y: u32) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = match self.rank[rx as usize].cmp(&self.rank[ry as usize]) {
            std::cmp::Ordering::Less => (ry, rx),
            std::cmp::Ordering::Greater => (rx, ry),
            std::cmp::Ordering::Equal => {
                self.rank[rx as usize] += 1;
                (rx, ry)
            }
        };
        self.parent[lo as usize] = hi;
        self.num_sets -= 1;
        true
    }

    /// Whether `x` and `y` are in the same set.
    pub fn same_set(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 3));
    }

    #[test]
    fn all_merged() {
        let mut uf = UnionFind::new(4);
        for i in 0..3 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        let r = uf.find(0);
        for i in 0..4 {
            assert_eq!(uf.find(i), r);
        }
    }
}
