//! Plain-text edge-list I/O (SNAP-compatible).
//!
//! The paper's §VI uses the SNAP `web-NotreDame` graph; this reader accepts
//! that format (whitespace-separated endpoint pairs, `#` comment lines) so
//! the real dataset can be dropped in where the experiments default to a
//! synthetic stand-in (see DESIGN.md §4).

use crate::{Graph, GraphBuilder};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Read an undirected graph from a whitespace-separated edge list.
///
/// Lines starting with `#` or `%` are comments; blank lines are skipped.
/// Vertex ids may be arbitrary `u64`s — they are compacted to `0..n` in
/// first-appearance order of the sorted id set. Directions are ignored
/// (the paper's experiment uses "the undirected version" of the input).
///
/// Exception: when the file starts with the header [`write_edge_list`]
/// emits (`# kron edge list: N vertices, ...`), the declared vertex count
/// is honored and ids are taken verbatim — so isolated vertices and the
/// exact numbering survive a write/read round trip (shard manifests and
/// product-vertex ids depend on factor numbering).
///
/// Returns the graph; self loops in the input are preserved (callers that
/// need the loop-free version apply [`Graph::without_self_loops`], matching
/// the paper's preprocessing).
pub fn read_edge_list<R: Read>(reader: R) -> std::io::Result<Graph> {
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    let mut line = String::new();
    let mut r = BufReader::new(reader);
    let mut lineno = 0usize;
    let mut declared_n: Option<usize> = None;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') || s.starts_with('%') {
            if lineno == 1 {
                declared_n = parse_kron_header(s);
            }
            continue;
        }
        let mut it = s.split_whitespace();
        let parse = |tok: Option<&str>| -> std::io::Result<u64> {
            tok.and_then(|t| t.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed edge on line {lineno}: {s:?}"),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        raw_edges.push((u, v));
    }
    if let Some(n) = declared_n {
        // Header present: ids are authoritative, isolated vertices kept.
        if n > u32::MAX as usize {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("declared vertex count {n} exceeds the u32 id space"),
            ));
        }
        let mut b = GraphBuilder::with_capacity(n, raw_edges.len());
        for (u, v) in raw_edges {
            if u as usize >= n || v as usize >= n {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("edge ({u},{v}) exceeds declared vertex count {n}"),
                ));
            }
            b.add_edge(u as u32, v as u32);
        }
        return Ok(b.build());
    }
    // Compact ids.
    let mut ids: Vec<u64> = raw_edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    ids.sort_unstable();
    ids.dedup();
    let index = |x: u64| ids.binary_search(&x).unwrap() as u32;
    let mut b = GraphBuilder::with_capacity(ids.len(), raw_edges.len());
    for (u, v) in raw_edges {
        b.add_edge(index(u), index(v));
    }
    Ok(b.build())
}

/// Recognize the [`write_edge_list`] header comment, returning the
/// declared vertex count.
fn parse_kron_header(s: &str) -> Option<usize> {
    let rest = s.strip_prefix("# kron edge list:")?.trim_start();
    let (count, tail) = rest.split_once(' ')?;
    if !tail.starts_with("vertices") {
        return None;
    }
    count.parse().ok()
}

/// [`read_edge_list`] from a filesystem path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> std::io::Result<Graph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write a graph as a tab-separated edge list (each undirected edge once,
/// loops as `v\tv`), with a header comment.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# kron edge list: {} vertices, {} edges, {} self loops",
        g.num_vertices(),
        g.num_edges(),
        g.num_self_loops()
    )?;
    for v in g.self_loops() {
        writeln!(writer, "{v}\t{v}")?;
    }
    for (u, v) in g.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    Ok(())
}

/// [`write_edge_list`] to a filesystem path.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    write_edge_list(g, std::io::BufWriter::new(std::fs::File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn header_roundtrip_keeps_isolated_vertices_and_numbering() {
        // vertices 0 and 4 isolated; 2↔3 edge must not be renumbered
        let g = Graph::from_edges(5, [(2, 3), (1, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(h, g);
        assert_eq!(h.num_vertices(), 5);
        assert!(h.has_edge(2, 3));
        // header with an out-of-range edge is rejected
        let bad = "# kron edge list: 2 vertices, 1 edges, 0 self loops\n0 7\n";
        assert!(read_edge_list(bad.as_bytes()).is_err());
        // a declared count beyond the u32 id space is rejected rather
        // than silently truncating edge endpoints
        let huge = "# kron edge list: 4294967297 vertices, 1 edges, 0 self loops\n4294967296 0\n";
        assert!(read_edge_list(huge.as_bytes()).is_err());
        // a SNAP-style file without the header still compacts
        let snap = "# some other comment\n100 2000\n";
        assert_eq!(read_edge_list(snap.as_bytes()).unwrap().num_vertices(), 2);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# SNAP-style header\n% matrix-market style\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn sparse_ids_compacted() {
        let text = "100 2000\n2000 30\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        // sorted id order: 30 -> 0, 100 -> 1, 2000 -> 2
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn directed_duplicates_collapse() {
        let text = "0 1\n1 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_line_is_error() {
        assert!(read_edge_list("0 not-a-number\n".as_bytes()).is_err());
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn path_roundtrip() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let dir = std::env::temp_dir().join("kron_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tsv");
        write_edge_list_path(&g, &path).unwrap();
        let h = read_edge_list_path(&path).unwrap();
        assert_eq!(g, h);
    }
}
