//! Plain-text edge-list I/O (SNAP-compatible).
//!
//! The paper's §VI uses the SNAP `web-NotreDame` graph; this reader accepts
//! that format (whitespace-separated endpoint pairs, `#` comment lines) so
//! the real dataset can be dropped in where the experiments default to a
//! synthetic stand-in (see DESIGN.md §4).

use crate::{Graph, GraphBuilder};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Read an undirected graph from a whitespace-separated edge list.
///
/// Lines starting with `#` or `%` are comments; blank lines are skipped.
/// Vertex ids may be arbitrary `u64`s — they are compacted to `0..n` in
/// first-appearance order of the sorted id set. Directions are ignored
/// (the paper's experiment uses "the undirected version" of the input).
///
/// Returns the graph; self loops in the input are preserved (callers that
/// need the loop-free version apply [`Graph::without_self_loops`], matching
/// the paper's preprocessing).
pub fn read_edge_list<R: Read>(reader: R) -> std::io::Result<Graph> {
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    let mut line = String::new();
    let mut r = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') || s.starts_with('%') {
            continue;
        }
        let mut it = s.split_whitespace();
        let parse = |tok: Option<&str>| -> std::io::Result<u64> {
            tok.and_then(|t| t.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed edge on line {lineno}: {s:?}"),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        raw_edges.push((u, v));
    }
    // Compact ids.
    let mut ids: Vec<u64> = raw_edges
        .iter()
        .flat_map(|&(u, v)| [u, v])
        .collect();
    ids.sort_unstable();
    ids.dedup();
    let index = |x: u64| ids.binary_search(&x).unwrap() as u32;
    let mut b = GraphBuilder::with_capacity(ids.len(), raw_edges.len());
    for (u, v) in raw_edges {
        b.add_edge(index(u), index(v));
    }
    Ok(b.build())
}

/// [`read_edge_list`] from a filesystem path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> std::io::Result<Graph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write a graph as a tab-separated edge list (each undirected edge once,
/// loops as `v\tv`), with a header comment.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# kron edge list: {} vertices, {} edges, {} self loops",
        g.num_vertices(),
        g.num_edges(),
        g.num_self_loops()
    )?;
    for v in g.self_loops() {
        writeln!(writer, "{v}\t{v}")?;
    }
    for (u, v) in g.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    Ok(())
}

/// [`write_edge_list`] to a filesystem path.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    write_edge_list(g, std::io::BufWriter::new(std::fs::File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# SNAP-style header\n% matrix-market style\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn sparse_ids_compacted() {
        let text = "100 2000\n2000 30\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        // sorted id order: 30 -> 0, 100 -> 1, 2000 -> 2
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn directed_duplicates_collapse() {
        let text = "0 1\n1 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_line_is_error() {
        assert!(read_edge_list("0 not-a-number\n".as_bytes()).is_err());
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn path_roundtrip() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let dir = std::env::temp_dir().join("kron_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tsv");
        write_edge_list_path(&g, &path).unwrap();
        let h = read_edge_list_path(&path).unwrap();
        assert_eq!(g, h);
    }
}
