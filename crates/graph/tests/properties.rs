//! Property-based tests for the graph substrate: construction invariants,
//! conversion roundtrips, traversal consistency.

use kron_graph::{
    bfs_distances, connected_components, core_decomposition, egonet, read_edge_list, spanning_tree,
    write_edge_list, DiGraph, Graph,
};
use proptest::prelude::*;

fn arb_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(n * 3)).prop_map(move |e| (n, e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_always_produces_valid_graphs((n, edges) in arb_edges(12)) {
        let g = Graph::from_edges(n, edges);
        prop_assert!(g.check_invariants().is_ok());
        // nnz identity
        prop_assert_eq!(g.nnz(), 2 * g.num_edges() + g.num_self_loops());
        // degree sum identity
        let degsum: u64 = g.degree_vector().iter().sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    #[test]
    fn io_roundtrip((n, edges) in arb_edges(12)) {
        let g = Graph::from_edges(n, edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        // isolated vertices are compacted away; edge structure must agree
        prop_assert_eq!(h.num_edges(), g.num_edges());
        prop_assert_eq!(h.num_self_loops(), g.num_self_loops());
    }

    #[test]
    fn csr_roundtrip((n, edges) in arb_edges(12)) {
        let g = Graph::from_edges(n, edges);
        prop_assert_eq!(Graph::from_csr(&g.to_csr()), g);
    }

    #[test]
    fn digraph_roundtrip((n, arcs) in arb_edges(12)) {
        let d = DiGraph::from_arcs(n, arcs);
        prop_assert!(d.check_invariants().is_ok());
        prop_assert_eq!(DiGraph::from_csr(&d.to_csr()), d.clone());
        // decomposition partitions the arcs
        let r = d.reciprocal_part();
        let recip_nnz = 2 * r.num_edges() + r.num_self_loops();
        prop_assert_eq!(recip_nnz + d.directed_part().num_arcs(), d.num_arcs());
    }

    #[test]
    fn spanning_tree_spans((n, edges) in arb_edges(12)) {
        let g = Graph::from_edges(n, edges);
        let tree = spanning_tree(&g);
        let (comps, ids) = connected_components(&g);
        prop_assert_eq!(tree.len(), n - comps);
        // the forest connects exactly what the graph connects
        let forest = Graph::from_edges(n, tree);
        let (fc, fids) = connected_components(&forest);
        prop_assert_eq!(fc, comps);
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(ids[u] == ids[v], fids[u] == fids[v]);
            }
        }
    }

    #[test]
    fn bfs_distances_are_metric((n, edges) in arb_edges(10)) {
        let g = Graph::from_edges(n, edges);
        let d = bfs_distances(&g, 0);
        prop_assert_eq!(d[0], 0);
        // neighbors differ by at most 1
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv); // both unreachable
            }
        }
    }

    #[test]
    fn egonet_is_induced((n, edges) in arb_edges(10), pick in 0u32..10) {
        let g = Graph::from_edges(n, edges);
        let center = pick % n as u32;
        let e = egonet(&g, center);
        prop_assert_eq!(e.mapping[e.center as usize], center);
        prop_assert_eq!(e.center_degree(), g.degree(center));
        // every egonet edge exists in the host
        for (u, v) in e.graph.edges() {
            prop_assert!(g.has_edge(e.mapping[u as usize], e.mapping[v as usize]));
        }
    }

    #[test]
    fn core_numbers_bounded_by_degree((n, edges) in arb_edges(12)) {
        let g = Graph::from_edges(n, edges);
        let core = core_decomposition(&g);
        for v in 0..n as u32 {
            prop_assert!(core[v as usize] as u64 <= g.degree(v));
        }
        // k-core subgraph has min degree ≥ k for the max k
        if let Some(&k) = core.iter().max() {
            if k > 0 {
                let keep: Vec<u32> =
                    (0..n as u32).filter(|&v| core[v as usize] >= k).collect();
                let (sub, _) = kron_graph::induced_subgraph(&g, &keep);
                for v in 0..sub.num_vertices() as u32 {
                    prop_assert!(sub.degree(v) >= k as u64);
                }
            }
        }
    }

    #[test]
    fn loop_edits_compose((n, edges) in arb_edges(10)) {
        let g = Graph::from_edges(n, edges);
        let stripped = g.without_self_loops();
        prop_assert_eq!(stripped.num_self_loops(), 0);
        prop_assert_eq!(stripped.num_edges(), g.num_edges());
        let all: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(
            stripped.with_self_loops_at(&all),
            stripped.with_all_self_loops()
        );
        prop_assert_eq!(g.with_all_self_loops().without_self_loops(), stripped);
    }
}
