//! Umbrella crate for the kron workspace.
//!
//! This package exists to host the repo-level integration tests
//! (`tests/`) and examples (`examples/`); it re-exports every workspace
//! crate under one roof so downstream scratch code can depend on a single
//! package.

pub use kron;
pub use kron_gen;
pub use kron_graph;
pub use kron_sparse;
pub use kron_stream;
pub use kron_triangles;
pub use kron_truss;
