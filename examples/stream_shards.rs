//! Sharded, validated edge-stream generation end to end: plan shards,
//! stream them into on-disk CSR artifacts, read rows back through the
//! mmap reader, verify everything, and resume a partial run.
//!
//! ```text
//! cargo run --release --example stream_shards
//! ```

use kron::{human_count, KronProduct};
use kron_gen::holme_kim;
use kron_stream::{
    load_manifest, stream_product, verify_shards, CsrReader, OutputFormat, ShardPlan, StreamConfig,
};

fn main() {
    // Two web-like factors; the product has ~n² of everything.
    let a = holme_kim(400, 3, 0.75, 2018);
    let b = holme_kim(300, 3, 0.75, 2019);
    let c = KronProduct::new(a, b);
    println!(
        "product: {} vertices, {} adjacency entries, {} triangles",
        human_count(c.num_vertices() as u128),
        human_count(c.nnz()),
        human_count(c.total_triangles()),
    );

    // 1. The plan: contiguous left-factor row blocks, balanced by nnz.
    let shards = 8;
    let plan = ShardPlan::new(&c, shards);
    println!(
        "\nplan: {shards} shards, heaviest = {} entries",
        plan.max_shard_entries()
    );
    for spec in plan.iter() {
        println!(
            "  shard {}: A-rows {:>4}..{:<4} {:>9} entries, Σt_C = {}",
            spec.index,
            spec.stats.rows.start,
            spec.stats.rows.end,
            spec.stats.nnz,
            spec.stats.triangle_sum,
        );
    }

    // 2. Stream into CSR artifacts with per-shard manifests.
    let dir = std::env::temp_dir().join("kron_stream_example");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = StreamConfig::new(&dir, OutputFormat::Csr);
    cfg.shards = shards;
    let run = stream_product(&c, &cfg).expect("stream run");
    println!(
        "\nstreamed {} entries on {} thread(s) in {:.2}s ({} entries/s)",
        human_count(run.total_entries),
        run.threads,
        run.elapsed_secs,
        human_count((run.total_entries as f64 / run.elapsed_secs.max(1e-9)) as u128),
    );

    // 3. Zero-copy reads: pick a product vertex, fetch its row via mmap.
    let p = c.num_vertices() / 2;
    let owner = plan
        .iter()
        .find(|s| s.stats.vertices.contains(&p))
        .expect("some shard owns p");
    let m = load_manifest(&dir, owner.index).expect("manifest");
    let reader = CsrReader::open(&dir.join(m.file.as_deref().unwrap())).expect("open CSR");
    let row = reader.row(p).unwrap();
    println!(
        "vertex {p}: degree {} on disk == closed form {} (first neighbors: {:?})",
        row.len() as u64 - u64::from(c.has_self_loop(p)),
        c.degree(p),
        &row[..row.len().min(5)],
    );

    // 4. Independent validation: closed-form checksums + artifact hashes.
    let report = verify_shards(&dir, false).expect("verify");
    println!(
        "\nverify-shards: {} shards, {} entries, {} artifact bytes — all checksums match",
        report.shards,
        human_count(report.total_entries),
        report.artifact_bytes,
    );

    // 5. Resume: delete one artifact, rerun with resume — only that shard
    //    regenerates.
    std::fs::remove_file(dir.join(m.file.as_deref().unwrap())).unwrap();
    cfg.resume = true;
    let rerun = stream_product(&c, &cfg).expect("resume run");
    println!(
        "resume: {} of {} shards reused, shard {} regenerated",
        rerun.resumed_shards, shards, owner.index
    );
    verify_shards(&dir, false).expect("verify after resume");

    std::fs::remove_dir_all(&dir).ok();
    println!("\n(For the paper-scale run, stream two 2^10-vertex R-MAT factors:");
    println!("  kron gen rmat --n 1024 --m 32 --out a.tsv   # ≥10⁹-entry product");
    println!("  kron stream a.tsv a.tsv --out run/ --shards 64 --format count");
    println!("  kron verify-shards run/ --rehash)");
}
