//! Graph500-style extreme-scale generation from a chain of small factors
//! (the construction of the paper's reference [3], "Design, generation,
//! and validation of extreme-scale power-law graphs"): a `k`-factor
//! Kronecker chain whose every statistic is known in closed form.
//!
//! ```sh
//! cargo run --release -p kron --example graph500_chain [k]
//! ```

use kron::{human_count, KronChain};
use kron_gen::holme_kim;
use kron_triangles::count_triangles;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    // small scale-free factors with distinct seeds
    let factors: Vec<_> = (0..k)
        .map(|i| holme_kim(64, 3, 0.8, 1000 + i as u64))
        .collect();
    for (i, f) in factors.iter().enumerate() {
        println!(
            "factor {}: {} vertices, {} edges, {} triangles",
            i + 1,
            f.num_vertices(),
            f.num_edges(),
            count_triangles(f).triangles
        );
    }

    let chain = KronChain::new(factors).expect("factors are loop-free");
    println!(
        "\nC = A1 (x) ... (x) A{k}: {} vertices, {} edges, {} triangles",
        human_count(chain.num_vertices()),
        human_count(chain.num_edges()),
        human_count(chain.total_triangles()),
    );
    println!(
        "exact: {} vertices, {} edges, {} triangles",
        chain.num_vertices(),
        chain.num_edges(),
        chain.total_triangles()
    );

    // mixed-radix indexing: inspect a few vertices of the gigantic graph
    println!("\nsample vertices (coords = per-factor indices):");
    let probes = [
        0u128,
        chain.num_vertices() / 7,
        chain.num_vertices() / 3,
        chain.num_vertices() - 1,
    ];
    for p in probes {
        let coords = chain.split(p);
        println!(
            "  p = {p}: coords {:?}, degree {}, triangles {}",
            coords,
            chain.degree(p),
            chain.vertex_triangles(p)
        );
        assert_eq!(chain.compose(&coords), p);
    }

    // an edge query: pick an edge through factor edges
    let (u, v) = {
        let es: Vec<(u32, u32)> = chain.factors()[0].edges().take(1).collect();
        es[0]
    };
    let mut cu = vec![0u32; k];
    let mut cv = vec![0u32; k];
    cu[0] = u;
    cv[0] = v;
    // remaining coordinates ride along any factor edge
    for (i, f) in chain.factors().iter().enumerate().skip(1) {
        let (a, b) = f.edges().next().expect("factor has edges");
        cu[i] = a;
        cv[i] = b;
    }
    let (p, q) = (chain.compose(&cu), chain.compose(&cv));
    println!(
        "\nedge ({p}, {q}): Δ_C = {} (= ∏ Δ_factor, exact)",
        chain
            .edge_triangles(p, q)
            .expect("constructed from factor edges")
    );
    println!(
        "\nτ scales as 6^(k−1)·∏τ_i — every statistic of the {}-vertex graph \
         is exact without generating a single edge.",
        human_count(chain.num_vertices())
    );
}
