//! Directed triangle motifs (Fig. 4/5 of the paper) on a directed
//! Kronecker product: exact per-type counts at every vertex of a graph
//! with hundreds of millions of arcs, from factor statistics alone
//! (Thms. 4–5).
//!
//! ```sh
//! cargo run --release -p kron --example directed_motifs
//! ```

use kron::KronDirectedProduct;
use kron_gen::holme_kim;
use kron_graph::DiGraph;
use kron_triangles::directed::{DirEdgeType, DirVertexType};
use rand::prelude::*;

/// A web-crawl-like directed factor: take a scale-free undirected graph
/// and orient each edge (keeping ~40% reciprocal, like real link graphs).
fn directed_weblike(n: usize, seed: u64) -> DiGraph {
    let base = holme_kim(n, 3, 0.7, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    let mut arcs = Vec::new();
    for (u, v) in base.edges() {
        if rng.gen_bool(0.4) {
            arcs.push((u, v));
            arcs.push((v, u));
        } else if rng.gen_bool(0.5) {
            arcs.push((u, v));
        } else {
            arcs.push((v, u));
        }
    }
    DiGraph::from_arcs(n, arcs)
}

fn main() {
    let a = directed_weblike(2_000, 5);
    let b = holme_kim(1_500, 3, 0.7, 6); // undirected right factor
    println!(
        "A (directed): {} vertices, {} arcs | B (undirected): {} vertices, {} edges",
        a.num_vertices(),
        a.num_arcs(),
        b.num_vertices(),
        b.num_edges()
    );

    let c = KronDirectedProduct::new(a, b).expect("A is loop-free");
    println!(
        "C = A (x) B: {} vertices, {} arcs (implicit)\n",
        c.num_vertices(),
        c.num_arcs()
    );

    // Fig. 4: total count of each directed vertex-triangle type in C.
    println!("directed triangle census of C (15 types, Thm. 4):");
    println!("  type   total in C");
    for ty in DirVertexType::ALL {
        println!("  {:<5} {:>16}", ty.label(), c.vertex_type_total(ty));
    }

    // A motif query at a single vertex of the huge product: O(1).
    let p = c.num_vertices() / 3;
    println!("\nmotif profile of product vertex {p}:");
    for ty in DirVertexType::ALL {
        let count = c.vertex_type_count(p, ty);
        if count > 0 {
            println!("  {:<5} {count}", ty.label());
        }
    }

    // Fig. 5: edge-type counts along one sampled arc.
    let (a_ref, b_ref) = c.factors();
    let (i, j) = a_ref.arcs().next().expect("A has arcs");
    let (k, l) = {
        let k = (0..b_ref.num_vertices() as u32)
            .find(|&k| b_ref.degree(k) > 0)
            .unwrap();
        (k, b_ref.neighbors(k).next().unwrap())
    };
    let ix = c.indexer();
    let (p, q) = (ix.compose(i, k), ix.compose(j, l));
    println!("\nedge-type profile of product arc ({p} -> {q}):");
    for ty in DirEdgeType::ALL {
        let count = c.edge_type_count(p, q, ty);
        if count > 0 {
            println!("  {:<5} {count}", ty.label());
        }
    }
}
