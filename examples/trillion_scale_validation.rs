//! The paper's §VI experiment end to end: build a web-graph-like factor
//! `A`, form `B = A + I`, and compute the exact vertex/edge/triangle table
//! for the Kronecker products `A ⊗ A` and `A ⊗ B` — graphs with billions of
//! vertices and trillions of edges — on one machine, in seconds, then
//! validate sampled egonets against the formulas (Fig. 7's methodology).
//!
//! ```sh
//! cargo run --release -p kron --example trillion_scale_validation [n]
//! ```
//!
//! `n` is the factor size (default 100_000; the paper's web-NotreDame had
//! 325_729 — pass that for full scale). The real SNAP file can be swapped
//! in via `kron_graph::read_edge_list_path`; the default is the Holme–Kim
//! stand-in documented in DESIGN.md §4.

use kron::{validate, KronProduct};
use kron_gen::holme_kim;
use kron_triangles::count_triangles;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    println!("generating web-like factor A (Holme–Kim, n = {n}, m = 3, p_t = 0.75)…");
    let t0 = Instant::now();
    let a = holme_kim(n, 3, 0.75, 2018);
    println!("  done in {:.2?}", t0.elapsed());

    let t0 = Instant::now();
    let ca = count_triangles(&a);
    println!(
        "A: {} vertices, {} edges, {} triangles ({} wedge checks, {:.2?})",
        a.num_vertices(),
        a.num_edges(),
        ca.triangles,
        ca.wedge_checks,
        t0.elapsed()
    );

    let b = a.with_all_self_loops();
    println!(
        "B = A + I: {} vertices, {} edges + {} self loops\n",
        b.num_vertices(),
        b.num_edges(),
        b.num_self_loops()
    );

    // The §VI table. All four rows are exact; the two product rows are
    // computed from factor statistics alone (Thm. 1 / Cor. 1).
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "Matrix", "Vertices", "Edges", "Triangles"
    );
    let t_table = Instant::now();
    let rows = [
        ("A", {
            let c = KronProduct::new(a.clone(), a.clone());
            let _ = c; // A's own row comes from direct counts:
            kron::ProductStats {
                vertices: a.num_vertices() as u128,
                edges: a.num_edges() as u128,
                self_loops: 0,
                triangles: ca.triangles as u128,
            }
        }),
        (
            "B = A + I",
            kron::ProductStats {
                vertices: b.num_vertices() as u128,
                edges: b.num_edges() as u128,
                self_loops: b.num_self_loops() as u128,
                triangles: ca.triangles as u128,
            },
        ),
        ("A (x) A", KronProduct::new(a.clone(), a.clone()).stats()),
        ("A (x) B", KronProduct::new(a.clone(), b.clone()).stats()),
    ];
    for (name, stats) in rows {
        println!("{}", stats.table_row(name));
    }
    println!(
        "\n(product rows computed via Kronecker formulas in {:.2?} total —\n \
         the paper reports ~10.5 s for its 111-trillion-triangle count)",
        t_table.elapsed()
    );

    // Exact (non-humanized) numbers for EXPERIMENTS.md.
    let caa = KronProduct::new(a.clone(), a.clone());
    let cab = KronProduct::new(a.clone(), b.clone());
    println!("\nexact: A(x)A = {}", caa.stats());
    println!("exact: A(x)B = {}", cab.stats());

    // Fig. 7-style egonet validation on the trillion-edge graphs.
    let t0 = Instant::now();
    validate::spot_check(&caa, 25, 1).expect("A (x) A egonets match formulas");
    validate::spot_check(&cab, 25, 2).expect("A (x) B egonets match formulas");
    println!(
        "\nvalidated 50 sampled egonets across both products in {:.2?} — \
         every degree, t_C, and Δ_C matched the formulas exactly",
        t0.elapsed()
    );
}
