//! Generate a large graph with a *known* truss decomposition (Thm. 3) —
//! the benchmark-construction workflow the paper proposes for validating
//! distributed k-truss implementations.
//!
//! ```sh
//! cargo run --release -p kron --example truss_benchmark_graph
//! ```

use kron::{product_truss, KronProduct};
use kron_gen::{barabasi_albert, one_triangle_per_edge};
use kron_triangles::edge_participation;
use kron_truss::truss_decomposition;

fn main() {
    // Left factor: any scale-free graph; its truss decomposition is cheap
    // to compute directly.
    let a = barabasi_albert(5_000, 4, 7);
    // Right factor: the paper's §III-D(b) generator — every edge is in at
    // most one triangle, the hypothesis of Thm. 3.
    let b = one_triangle_per_edge(2_000, 8);
    let max_delta_b = edge_participation(&b).into_iter().max().unwrap_or(0);
    println!(
        "A: {} vertices / {} edges; B: {} vertices / {} edges (max Δ_B = {max_delta_b})",
        a.num_vertices(),
        a.num_edges(),
        b.num_vertices(),
        b.num_edges()
    );

    // Thm. 3: the truss decomposition of C = A ⊗ B is known exactly.
    let kt = product_truss(&a, &b).expect("Δ_B ≤ 1 by construction");
    let c = KronProduct::new(a.clone(), b.clone());
    println!(
        "C = A (x) B: {} vertices, {} edges — ground-truth truss decomposition known a priori",
        c.num_vertices(),
        c.num_edges()
    );
    println!("\n  κ   |T(κ)_A| (edges)   |T(κ)_C| (edges)");
    let da = kt.left_truss();
    for kappa in 2..=kt.max_trussness() {
        println!(
            "  {kappa:<3} {:>12}    {:>16}",
            da.edges_in_truss(kappa).count(),
            kt.truss_size(kappa)
        );
    }

    // Demonstrate the validation loop on a materializable slice: a solver
    // (our peeling implementation) must reproduce the predicted trussness.
    let a_small = barabasi_albert(40, 3, 9);
    let b_small = one_triangle_per_edge(25, 10);
    let kt_small = product_truss(&a_small, &b_small).unwrap();
    let g = KronProduct::new(a_small, b_small)
        .materialize(1 << 26)
        .expect("small instance materializes");
    let solved = truss_decomposition(&g);
    let mut checked = 0u64;
    for (u, v) in g.edges() {
        assert_eq!(
            solved.trussness_of(u, v),
            kt_small.trussness(u as u64, v as u64),
            "solver disagrees with ground truth at ({u},{v})"
        );
        checked += 1;
    }
    println!(
        "\nsolver validation: {checked} edges of a materialized {}-edge instance \
         matched the predicted trussness exactly",
        g.num_edges()
    );
}
