//! Quickstart: build a Kronecker product graph and read off exact triangle
//! statistics without ever materializing it.
//!
//! ```sh
//! cargo run --release -p kron --example quickstart
//! ```

use kron::{human_count, validate, KronProduct};
use kron_gen::{deterministic::clique, holme_kim};

fn main() {
    // Two medium factors: a scale-free, triangle-rich graph and a clique.
    let a = holme_kim(10_000, 3, 0.75, 42);
    let b = clique(64);
    println!(
        "A: {} vertices, {} edges | B: {} vertices, {} edges",
        a.num_vertices(),
        a.num_edges(),
        b.num_vertices(),
        b.num_edges()
    );

    // The product C = A ⊗ B exists only implicitly.
    let c = KronProduct::new(a, b);
    let stats = c.stats();
    println!(
        "C = A (x) B: {} vertices, {} edges, {} triangles — held in O(|E_C|^1/2) memory",
        human_count(stats.vertices),
        human_count(stats.edges),
        human_count(stats.triangles),
    );

    // O(1) exact local queries anywhere in the 100M+-edge graph:
    let p = c.num_vertices() / 2;
    println!(
        "vertex {p}: degree = {}, triangles = {}",
        c.degree(p),
        c.vertex_triangles(p)
    );

    let nbrs = c.neighbors(p);
    let q = nbrs[0];
    println!(
        "edge ({p}, {q}): triangles = {}",
        c.edge_triangles(p, q).expect("q is a neighbor of p")
    );

    // Validate the formulas the way the paper does (§VI): build egonets
    // implicitly and count by brute force.
    validate::spot_check(&c, 20, 7).expect("formulas agree with brute force");
    println!("spot check passed: 20 egonets validated against the Kronecker formulas");
}
