//! Vertex-labeled triangle patterns (Fig. 6 of the paper) on a labeled
//! Kronecker product — the "labeled pattern matching in trillion-edge
//! graphs" scenario the paper's introduction motivates, with exact ground
//! truth from Thms. 6–7.
//!
//! ```sh
//! cargo run --release -p kron --example labeled_patterns
//! ```

use kron::KronLabeledProduct;
use kron_gen::holme_kim;
use kron_graph::{Label, LabeledGraph};
use rand::prelude::*;

const COLOR: [&str; 3] = ["red", "green", "blue"];

fn main() {
    // A: a scale-free factor whose vertices are colored r/g/b.
    let base = holme_kim(3_000, 3, 0.7, 11);
    let mut rng = StdRng::seed_from_u64(12);
    let n = base.num_vertices();
    let labels: Vec<Label> = (0..n).map(|_| rng.gen_range(0..3)).collect();
    let a = LabeledGraph::new(base, labels, 3);
    println!(
        "A: {} vertices ({} red / {} green / {} blue), {} edges",
        n,
        a.label_histogram()[0],
        a.label_histogram()[1],
        a.label_histogram()[2],
        a.graph().num_edges()
    );

    // B: unlabeled right factor (with loops, to boost triangles — Rem. 3).
    let b = holme_kim(2_000, 3, 0.7, 13).with_all_self_loops();
    println!(
        "B: {} vertices, {} edges + loops at every vertex",
        b.num_vertices(),
        b.num_edges()
    );

    let c = KronLabeledProduct::new(a, b).expect("A is loop-free");
    println!(
        "C = A (x) B: {} vertices, labels inherited blockwise\n",
        c.num_vertices()
    );

    // Fig. 6 census: for each center color, the C(|L|+1, 2) = 6 triangle
    // types, totaled over the whole product graph. Thm. 6 factorizes the
    // total: Σ_p t^(τ)_C(p) = (Σ_i t^(τ)_A(i)) × (Σ_k diag(B³)_k) — the
    // product is never materialized.
    let ta = kron_triangles::labeled::labeled_vertex_participation(c.factors().0);
    let d3b_sum: u128 = kron_triangles::matrix_oracle::diag_cubed(c.factors().1)
        .iter()
        .map(|&x| x as u128)
        .sum();
    println!("labeled triangle census of C (Thm. 6):");
    println!("  center  others      total at centers of this type");
    let mut grand = 0u128;
    for q1 in 0..3u16 {
        for q2 in 0..3u16 {
            for q3 in q2..3u16 {
                let factor_total: u128 = ta.get(q1, q2, q3).iter().map(|&x| x as u128).sum();
                let total = factor_total * d3b_sum;
                grand += total;
                println!(
                    "  {:<7} {:<5}+{:<5} {:>20}",
                    COLOR[q1 as usize], COLOR[q2 as usize], COLOR[q3 as usize], total
                );
            }
        }
    }
    println!("  (grand total = {grand} = 3 × τ(C))");

    // A single-vertex pattern query in the huge product: O(1).
    let p = c.num_vertices() / 2;
    println!(
        "\npattern profile of product vertex {p} (color {}):",
        COLOR[c.label(p) as usize]
    );
    let q1 = c.label(p);
    for q2 in 0..3u16 {
        for q3 in q2..3u16 {
            let count = c.vertex_type_count(p, q1, q2, q3);
            if count > 0 {
                println!(
                    "  with {:<5} + {:<5}: {count}",
                    COLOR[q2 as usize], COLOR[q3 as usize]
                );
            }
        }
    }
}
