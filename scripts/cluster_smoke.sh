#!/usr/bin/env bash
# End-to-end smoke of the cluster path: generate a CSR run directory,
# serve it three ways at once — one whole-run server, and a 2-node
# shard-subset cluster behind a `kron route` front end — and assert the
# routed answers are byte-identical to the single node's. Then the
# failover leg: a 3-node cluster with every shard on two replicas gets
# one node SIGKILLed mid-/batch, and the answers must stay
# byte-identical with zero client-visible errors and failovers > 0 in
# the router's /stats. Finishes with graceful shutdowns and the
# clusters' cross-check certifications (the auditing nodes check every
# answer they assemble, remote rows included).
# Run from the repo root; CI calls it after the release build.
set -euo pipefail

BIN=${KRON_BIN:-target/release/kron}
work=$(mktemp -d)
pids=()
trap 'for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$work"' EXIT

# The cluster nodes need each other's address up front (the ownership map
# is static), so pick two ports deterministically-ish and verify the
# binds below instead of using :0.
P0=$((21000 + $$ % 9000))
P1=$((P0 + 1))

start() { # name, logfile prefix, args...
    local name=$1; shift
    "$BIN" "$@" > "$work/$name.out" 2> "$work/$name.err" &
    pids+=($!)
    eval "${name}_pid=$!"
    for _ in $(seq 100); do
        grep -q '^listening on ' "$work/$name.out" 2>/dev/null && break
        sleep 0.1
    done
    local addr
    addr=$(sed -n 's|^listening on http://||p' "$work/$name.out" | head -1)
    [ -n "$addr" ] || { echo "$name never printed its address"; cat "$work/$name.err"; exit 1; }
    eval "${name}_addr=$addr"
    echo "   $name at $addr"
}

stop() { # name → asserts exit 0
    local name=$1 pid_var="${1}_pid" status=0
    local pid=${!pid_var}
    kill -TERM "$pid"
    wait "$pid" || status=$?
    [ "$status" -eq 0 ] || { echo "$name exited $status"; cat "$work/$name.err"; exit 1; }
}

echo "== generate a run directory (4 CSR shards)"
"$BIN" gen holme-kim --n 40 --m 2 --seed 7 --out "$work/a.tsv"
"$BIN" stream "$work/a.tsv" "$work/a.tsv" --out "$work/run" --shards 4 --format csr
"$BIN" verify-shards "$work/run"

echo "== start the whole-run reference server and the 2-node cluster"
start single serve "$work/run" --listen 127.0.0.1:0
start node0 serve "$work/run" --listen "127.0.0.1:$P0" --shards 0..2 \
    --peers "2..4=127.0.0.1:$P1" --source cross-check:4 --cache 1024
start node1 serve "$work/run" --listen "127.0.0.1:$P1" --shards 2..4 \
    --peers "0..2=127.0.0.1:$P0"
start router route --peers "127.0.0.1:$P0,127.0.0.1:$P1" --listen 127.0.0.1:0

echo "== routed answers must be byte-identical to the single node's"
{
    for v in 0 7 57 199 1599; do
        echo "degree $v"
        echo "neighbors $v"
        echo "tri_vertex $v"
        echo "has_edge $v $(( (v + 3) % 1600 ))"
        echo "tri_edge $v $(( (v + 1) % 1600 ))"
    done
    echo "degree 1600"        # out of range: in-band error line
} > "$work/queries.txt"
curl -fsS --data-binary @"$work/queries.txt" "http://$single_addr/batch" > "$work/batch_single.txt"
curl -fsS --data-binary @"$work/queries.txt" "http://$router_addr/batch" > "$work/batch_routed.txt"
diff "$work/batch_single.txt" "$work/batch_routed.txt" \
    || { echo "routed /batch diverged from the single node"; exit 1; }
for q in 'degree%2057' 'tri_vertex%2057' 'neighbors%203' 'tri_edge%2057%2058'; do
    one=$(curl -fsS "http://$single_addr/query?q=$q")
    routed=$(curl -fsS "http://$router_addr/query?q=$q")
    [ "$one" = "$routed" ] || { echo "routed /query?q=$q diverged: $one vs $routed"; exit 1; }
done
# error paths are identical too (422 out of range through both)
for addr in "$single_addr" "$router_addr"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/query?q=degree%209999999")
    [ "$code" = 422 ] || { echo "$addr: expected 422, got $code"; exit 1; }
done

echo "== routed traversals must be byte-identical to the single node's"
# sources and targets on both sides of the shard split, so the executing
# node pulls real cross-node rows; plus a bounded search that comes back
# unreachable in-band
for req in 'path?from=0&to=1599' 'path?from=1599&to=0' 'path?from=7&to=801' \
           'path?from=0&to=1599&max_depth=1' 'khop?v=57&k=2' 'khop?v=801&k=1'; do
    one=$(curl -fsS "http://$single_addr/$req")
    routed=$(curl -fsS "http://$router_addr/$req")
    [ "$one" = "$routed" ] || { echo "routed /$req diverged: $one vs $routed"; exit 1; }
done
# out-of-range vertices are 422, garbage parameters 400 — through both tiers
for addr in "$single_addr" "$router_addr"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/path?from=0&to=9999999")
    [ "$code" = 422 ] || { echo "$addr: /path oob expected 422, got $code"; exit 1; }
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/khop?v=0&k=abc")
    [ "$code" = 400 ] || { echo "$addr: /khop garbage expected 400, got $code"; exit 1; }
done

echo "== cluster health and merged stats"
[ "$(curl -fsS "http://$router_addr/healthz")" = "ok" ]
stats=$(curl -fsS "http://$router_addr/stats")
echo "$stats" | grep -q '"role":"router"'
echo "$stats" | grep -q '"mismatch_count":0'
# tri_vertex queries crossed the node boundary: rows moved over the wire
echo "$stats" | grep -vq '"rows_served":0}' \
    || { echo "no /row traffic — the cluster never clustered"; exit 1; }

echo "== replicated cluster: 3 nodes, every shard on two replicas"
PA=$((P0 + 2)); PB=$((P0 + 3)); PC=$((P0 + 4))
# A and B split the run and each list TWO replicas for the far half (the
# other splitter, plus C); C serves the whole run. Killing C leaves every
# shard with exactly one live replica.
start nodeA serve "$work/run" --listen "127.0.0.1:$PA" --shards 0..2 \
    --peers "2..4=127.0.0.1:$PB,2..4=127.0.0.1:$PC" --source cross-check:4 --cache 1024
start nodeB serve "$work/run" --listen "127.0.0.1:$PB" --shards 2..4 \
    --peers "0..2=127.0.0.1:$PA,0..2=127.0.0.1:$PC"
start nodeC serve "$work/run" --listen "127.0.0.1:$PC"
start router2 route --peers "127.0.0.1:$PA,127.0.0.1:$PB,127.0.0.1:$PC" \
    --listen 127.0.0.1:0 --rediscover 1

echo "== SIGKILL one replica mid-/batch: clients must not notice"
: > "$work/grid.txt"
for v in $(seq 0 1599); do
    {
        echo "degree $v"
        echo "neighbors $v"
        echo "tri_vertex $v"
        echo "has_edge $v $(( (v + 3) % 1600 ))"
        echo "tri_edge $v $(( (v + 1) % 1600 ))"
    } >> "$work/grid.txt"
done
curl -fsS --data-binary @"$work/grid.txt" "http://$single_addr/batch" > "$work/grid_single.txt"
curl -fsS --data-binary @"$work/grid.txt" "http://$router2_addr/batch" > "$work/grid_mid.txt" &
curl_pid=$!
sleep 0.05
kill -9 "$nodeC_pid"
wait "$curl_pid" || { echo "mid-kill /batch errored"; exit 1; }
diff "$work/grid_single.txt" "$work/grid_mid.txt" \
    || { echo "mid-kill /batch diverged from the single node"; exit 1; }
# with the replica gone for good, a full whole-grid batch still matches
curl -fsS --data-binary @"$work/grid.txt" "http://$router2_addr/batch" > "$work/grid_after.txt" \
    || { echo "post-kill /batch errored"; exit 1; }
diff "$work/grid_single.txt" "$work/grid_after.txt" \
    || { echo "post-kill /batch diverged from the single node"; exit 1; }
# traversals survive the kill too: the executing node fails its row
# fetches over to the surviving replica
for req in 'path?from=0&to=1599' 'khop?v=57&k=2'; do
    one=$(curl -fsS "http://$single_addr/$req")
    routed=$(curl -fsS "http://$router2_addr/$req")
    [ "$one" = "$routed" ] || { echo "post-kill /$req diverged: $one vs $routed"; exit 1; }
done
# the router's /stats tells the story: failovers happened, the killed
# replica is down, and the tolerant merge still answers 200
stats2=$(curl -fsS "http://$router2_addr/stats")
failovers=$(echo "$stats2" | grep -o '"failovers":[0-9]*' | head -1 | cut -d: -f2)
[ "${failovers:-0}" -gt 0 ] || { echo "router never failed over: $stats2"; exit 1; }
echo "$stats2" | grep -q '"up":false' \
    || { echo "killed replica not marked down: $stats2"; exit 1; }
echo "$stats2" | grep -q '"mismatch_count":0' \
    || { echo "failover must not poison cross-check: $stats2"; exit 1; }

echo "== graceful shutdowns (routers, then nodes, then the reference)"
stop router
stop router2
stop node0
grep -q 'cross-check: 0 mismatches' "$work/node0.err" \
    || { echo "node 0 did not certify its cross-checked run"; cat "$work/node0.err"; exit 1; }
stop node1
stop nodeA
grep -q 'cross-check: 0 mismatches' "$work/nodeA.err" \
    || { echo "node A did not certify its cross-checked run"; cat "$work/nodeA.err"; exit 1; }
stop nodeB
stop single
pids=()
echo "cluster smoke OK"
