#!/usr/bin/env bash
# End-to-end smoke of `kron serve --listen`: generate a small CSR run
# directory, start the server with sampled cross-checking, exercise every
# endpoint with a scripted client, then assert a clean graceful shutdown
# (exit 0 — meaning no sampled query disagreed with the closed-form
# oracle). Run from the repo root; CI calls it after the release build.
set -euo pipefail

BIN=${KRON_BIN:-target/release/kron}
work=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$work"' EXIT

echo "== generate a run directory"
"$BIN" gen holme-kim --n 40 --m 2 --seed 7 --out "$work/a.tsv"
"$BIN" stream "$work/a.tsv" "$work/a.tsv" --out "$work/run" --shards 4 --format csr
"$BIN" verify-shards "$work/run"

echo "== start the server (ephemeral port, cross-check 1 in 4)"
"$BIN" serve "$work/run" --listen 127.0.0.1:0 --source cross-check:4 \
    > "$work/stdout.txt" 2> "$work/stderr.txt" &
server_pid=$!
for _ in $(seq 100); do
    grep -q '^listening on ' "$work/stdout.txt" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's|^listening on http://||p' "$work/stdout.txt" | head -1)
[ -n "$addr" ] || { echo "server never printed its address"; exit 1; }
echo "   bound at $addr"

echo "== healthz / query / batch / stats"
[ "$(curl -fsS "http://$addr/healthz")" = "ok" ]
degree=$(curl -fsS "http://$addr/query?q=degree%2057")
echo "   degree 57 = $degree"
[ "$degree" -ge 0 ] 2>/dev/null
printf 'degree 57\ntri_vertex 57\ntri_edge 57 58\nneighbors 3\n' \
    | curl -fsS --data-binary @- "http://$addr/batch" | tee "$work/batch.txt"
[ "$(wc -l < "$work/batch.txt")" -eq 4 ]
grep -q '^degree 57 = ' "$work/batch.txt"
stats=$(curl -fsS "http://$addr/stats")
echo "$stats" | grep -q '"mismatch_count":0'
echo "$stats" | grep -q '"source":"cross-check:4"'
echo "$stats" | grep -vq '"sampled_checks":0'
# malformed queries are 400s, not crashes
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/query?q=frobnicate")
[ "$code" = 400 ]
# out-of-range vertices are 422s
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/query?q=degree%2099999999")
[ "$code" = 422 ]

echo "== graceful shutdown (SIGTERM → exit 0 on a clean cross-check record)"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
[ "$status" -eq 0 ] || { echo "server exited $status on a clean run"; exit 1; }
grep -q 'cross-check: 0 mismatches' "$work/stderr.txt"
echo "server smoke OK (exit $status)"
