#!/usr/bin/env bash
# End-to-end smoke of `kron serve --listen`: generate a small CSR run
# directory, start the server with sampled cross-checking, exercise every
# endpoint with a scripted client, then assert a clean graceful shutdown
# (exit 0 — meaning no sampled query disagreed with the closed-form
# oracle). A second stress leg drives ~2K concurrent keep-alive
# connections through the event loop with `stress_serve` (built by
# `cargo build --release -p kron-bench --bin stress_serve`; the leg is
# skipped with a warning when the binary is missing), asserts zero
# request errors and a sane p99 under `--source cross-check:16`, and
# ends with a clean SIGTERM drain. Run from the repo root; CI calls it
# after the release build.
set -euo pipefail

BIN=${KRON_BIN:-target/release/kron}
STRESS_BIN=${STRESS_BIN:-target/release/stress_serve}
# The stress leg holds every client socket at once; raise the fd limit
# when allowed, then size the leg to what we actually got.
ulimit -n 65536 2>/dev/null || true
STRESS_CONNS=${STRESS_CONNS:-2000}
fd_budget=$(( $(ulimit -n) / 4 ))
if [ "$STRESS_CONNS" -gt "$fd_budget" ]; then
    STRESS_CONNS=$fd_budget
    echo "fd limit $(ulimit -n): stress leg scaled down to $STRESS_CONNS connections"
fi
work=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$work"' EXIT

echo "== generate a run directory"
"$BIN" gen holme-kim --n 40 --m 2 --seed 7 --out "$work/a.tsv"
"$BIN" stream "$work/a.tsv" "$work/a.tsv" --out "$work/run" --shards 4 --format csr
"$BIN" verify-shards "$work/run"

echo "== start the server (ephemeral port, cross-check 1 in 4)"
"$BIN" serve "$work/run" --listen 127.0.0.1:0 --source cross-check:4 \
    > "$work/stdout.txt" 2> "$work/stderr.txt" &
server_pid=$!
for _ in $(seq 100); do
    grep -q '^listening on ' "$work/stdout.txt" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's|^listening on http://||p' "$work/stdout.txt" | head -1)
[ -n "$addr" ] || { echo "server never printed its address"; exit 1; }
echo "   bound at $addr"

echo "== healthz / query / batch / stats"
[ "$(curl -fsS "http://$addr/healthz")" = "ok" ]
degree=$(curl -fsS "http://$addr/query?q=degree%2057")
echo "   degree 57 = $degree"
[ "$degree" -ge 0 ] 2>/dev/null
printf 'degree 57\ntri_vertex 57\ntri_edge 57 58\nneighbors 3\n' \
    | curl -fsS --data-binary @- "http://$addr/batch" | tee "$work/batch.txt"
[ "$(wc -l < "$work/batch.txt")" -eq 4 ]
grep -q '^degree 57 = ' "$work/batch.txt"
stats=$(curl -fsS "http://$addr/stats")
echo "$stats" | grep -q '"mismatch_count":0'
echo "$stats" | grep -q '"source":"cross-check:4"'
echo "$stats" | grep -vq '"sampled_checks":0'
# malformed queries are 400s, not crashes
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/query?q=frobnicate")
[ "$code" = 400 ]
# out-of-range vertices are 422s
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/query?q=degree%2099999999")
[ "$code" = 422 ]

echo "== graceful shutdown (SIGTERM → exit 0 on a clean cross-check record)"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
[ "$status" -eq 0 ] || { echo "server exited $status on a clean run"; exit 1; }
grep -q 'cross-check: 0 mismatches' "$work/stderr.txt"
echo "server smoke OK (exit $status)"

if [ ! -x "$STRESS_BIN" ]; then
    echo "== stress leg SKIPPED ($STRESS_BIN not built; cargo build --release -p kron-bench --bin stress_serve)"
    exit 0
fi

echo "== stress leg: $STRESS_CONNS keep-alive connections, cross-check 1 in 16"
"$BIN" serve "$work/run" --listen 127.0.0.1:0 --source cross-check:16 \
    --max-conns $(( STRESS_CONNS + 64 )) \
    > "$work/stress_stdout.txt" 2> "$work/stress_stderr.txt" &
server_pid=$!
for _ in $(seq 100); do
    grep -q '^listening on ' "$work/stress_stdout.txt" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's|^listening on http://||p' "$work/stress_stdout.txt" | head -1)
[ -n "$addr" ] || { echo "stress server never printed its address"; exit 1; }
echo "   bound at $addr"

# exit 0 from stress_serve == every connection opened and every request
# answered 200
"$STRESS_BIN" "$addr" --conns "$STRESS_CONNS" \
    --requests $(( STRESS_CONNS * 4 )) --threads 16 --json \
    > "$work/stress.json"
cat "$work/stress.json"
grep -q '"errors":0' "$work/stress.json"
# a p99 parseable as a sane number (microseconds, under 10s) — "flat"
# enough that no request sat behind a stalled peer for seconds
p99=$(sed -n 's/.*"p99_us":\([0-9]*\).*/\1/p' "$work/stress.json")
[ -n "$p99" ] && [ "$p99" -lt 10000000 ] \
    || { echo "stress p99 missing or degenerate: '$p99'"; exit 1; }

stats=$(curl -fsS "http://$addr/stats")
echo "$stats" | grep -q '"mismatch_count":0'
echo "$stats" | grep -q '"source":"cross-check:16"'
# the event loop saw (at least) every stress connection
peak=$(echo "$stats" | sed -n 's/.*"peak":\([0-9]*\).*/\1/p')
[ -n "$peak" ] && [ "$peak" -ge "$STRESS_CONNS" ] \
    || { echo "connection peak '$peak' below $STRESS_CONNS"; exit 1; }

echo "== stress server graceful shutdown"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
[ "$status" -eq 0 ] || { echo "stress server exited $status on a clean run"; exit 1; }
grep -q 'cross-check: 0 mismatches' "$work/stress_stderr.txt"
echo "stress smoke OK ($STRESS_CONNS conns, p99 ${p99}us, exit $status)"
