#!/usr/bin/env bash
# End-to-end smoke of the whole-graph analytics surfaces: run every
# `kron analyze` kernel over a small CSR run directory (validation on),
# check the result documents are deterministic across thread counts and
# byte-identical to the server's async job API, exercise the job
# lifecycle (submit, poll, 429 at the pool cap, cooperative cancel),
# prove a tampered artifact fails the recount nonzero, then assert a
# clean graceful shutdown. Run from the repo root; CI calls it after
# the release build.
set -euo pipefail

BIN=${KRON_BIN:-target/release/kron}
work=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$work"' EXIT

echo "== generate a run directory"
"$BIN" gen holme-kim --n 40 --m 2 --seed 7 --out "$work/a.tsv"
"$BIN" stream "$work/a.tsv" "$work/a.tsv" --out "$work/run" --shards 4 --format csr
"$BIN" verify-shards "$work/run"

echo "== all four kernels, validation on"
"$BIN" analyze "$work/run" --kernel bfs --source 3 > "$work/bfs.json"
grep -q '"kernel":"bfs"' "$work/bfs.json"
grep -q '"unreached":0' "$work/bfs.json"   # holme-kim products are connected
"$BIN" analyze "$work/run" --kernel cc > "$work/cc.json"
grep -q '"components":1' "$work/cc.json"
"$BIN" analyze "$work/run" --kernel pagerank --top 3 > "$work/pr.json"
grep -q '"kernel":"pagerank"' "$work/pr.json"
grep -q '"top":\[' "$work/pr.json"
"$BIN" analyze "$work/run" --kernel tri-census > "$work/census.json"
grep -q '"ok":true' "$work/census.json"    # recount matches the closed forms

echo "== results are deterministic across thread counts"
"$BIN" analyze "$work/run" --kernel cc --threads 1 > "$work/cc.t1.json"
"$BIN" analyze "$work/run" --kernel cc --threads 4 > "$work/cc.t4.json"
cmp "$work/cc.t1.json" "$work/cc.t4.json"
cmp "$work/cc.t1.json" "$work/cc.json"

echo "== a tampered artifact fails the recount nonzero"
cp -r "$work/run" "$work/bad"
# flip the low bit of one mid-file column word per shard: structurally
# valid, in range, wrong adjacency — exactly what checksums would
# catch, except `kron analyze` opens structurally (the recount IS the
# integrity check)
for shard in "$work/bad"/shard_*.csr; do
    num_rows=$(od -An -tu8 -j 16 -N 8 "$shard" | tr -d ' ')
    nnz=$(od -An -tu8 -j 24 -N 8 "$shard" | tr -d ' ')
    off=$((32 + 8 * (num_rows + 1) + 8 * (nnz / 2)))   # §"CSR shard" layout
    old=$(od -An -tu1 -j "$off" -N 1 "$shard" | tr -d ' ')
    printf "$(printf '\\%03o' $((old ^ 1)))" \
        | dd of="$shard" bs=1 seek="$off" conv=notrunc 2>/dev/null
done
status=0
"$BIN" analyze "$work/bad" --kernel tri-census > "$work/bad.json" 2> "$work/bad.err" || status=$?
[ "$status" -ne 0 ] || { echo "tampered artifact validated cleanly"; exit 1; }
grep -q '"ok":false' "$work/bad.json"      # the mismatch report still prints
grep -q 'closed forms' "$work/bad.err"

echo "== start the server (ephemeral port, job pool of 1)"
"$BIN" serve "$work/run" --listen 127.0.0.1:0 --jobs 1 \
    > "$work/stdout.txt" 2> "$work/stderr.txt" &
server_pid=$!
for _ in $(seq 100); do
    grep -q '^listening on ' "$work/stdout.txt" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's|^listening on http://||p' "$work/stdout.txt" | head -1)
[ -n "$addr" ] || { echo "server never printed its address"; exit 1; }
echo "   bound at $addr"

poll_until_settled() {
    local id=$1 body
    for _ in $(seq 200); do
        body=$(curl -fsS "http://$addr/jobs/$id")
        case "$body" in *'"state":"running"'*) sleep 0.05 ;; *) printf '%s' "$body"; return 0 ;; esac
    done
    echo "job $id never settled" >&2
    return 1
}

echo "== a server job returns the CLI's exact bytes"
accepted=$(curl -fsS -d '{"kernel":"cc"}' "http://$addr/jobs")
echo "   $accepted"
id=$(printf '%s' "$accepted" | sed -n 's/^{"id":\([0-9]*\).*/\1/p')
[ -n "$id" ] || { echo "submission returned no id"; exit 1; }
body=$(poll_until_settled "$id")
expected=$(printf '{"id":%s,"kernel":"cc","state":"done","result":%s}' "$id" "$(cat "$work/cc.json")")
[ "$body" = "$expected" ] || {
    printf 'job result diverged from the CLI:\n  job: %s\n  cli: %s\n' "$body" "$expected"
    exit 1
}

echo "== pool cap (429), cooperative cancel"
# an effectively endless kernel: tol -1 is unreachable, so PageRank
# grinds until its (astronomical) iteration cap or a cancel
endless='{"kernel":"pagerank","tol":-1,"iters":1000000000000}'
accepted=$(curl -fsS -d "$endless" "http://$addr/jobs")
id=$(printf '%s' "$accepted" | sed -n 's/^{"id":\([0-9]*\).*/\1/p')
code=$(curl -s -o "$work/429.json" -w '%{http_code}' -d "$endless" "http://$addr/jobs")
[ "$code" = 429 ] || { echo "pool cap returned $code, not 429"; exit 1; }
grep -q '"error":"job pool is full"' "$work/429.json"
curl -fsS -X DELETE "http://$addr/jobs/$id" | grep -q '"cancel_requested":true'
poll_until_settled "$id" | grep -q '"error":"cancelled"'
stats=$(curl -fsS "http://$addr/stats")
echo "$stats" | grep -q '"jobs":{"cap":1,"submitted":2'
echo "$stats" | grep -q '"rejected":1'
echo "$stats" | grep -q '"validation_failures":0'

echo "== graceful shutdown (SIGTERM → exit 0: cancels never fail the run)"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
[ "$status" -eq 0 ] || { echo "server exited $status on a clean run"; exit 1; }
grep -q '2 jobs (0 failed, 1 cancelled, 0 validation failures)' "$work/stderr.txt"
echo "analyze smoke OK (exit $status)"
