#!/usr/bin/env bash
# End-to-end smoke of the csr2 shard format: generate a product, stream
# it twice (csr and csr2), verify both with full rehashing, answer an
# identical query batch over both and diff the answers byte for byte,
# then convert the v1 run in place with `kron compact`, re-verify it,
# and diff again — plus idempotence (a second compact converts nothing)
# and the size claim (the csr2 artifacts are smaller). Run from the
# repo root; CI calls it after the release build.
set -euo pipefail

BIN=${KRON_BIN:-target/release/kron}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== generate a factor and stream it in both formats"
"$BIN" gen holme-kim --n 40 --m 2 --seed 7 --out "$work/a.tsv"
"$BIN" stream "$work/a.tsv" "$work/a.tsv" --out "$work/run_v1" --shards 4 --format csr
"$BIN" stream "$work/a.tsv" "$work/a.tsv" --out "$work/run_v2" --shards 4 --format csr2
"$BIN" verify-shards "$work/run_v1" --rehash
"$BIN" verify-shards "$work/run_v2" --rehash

csr_bytes=$(du -sb "$work/run_v1" | cut -f1)
csr2_bytes=$(du -sb "$work/run_v2" | cut -f1)
echo "   v1 run $csr_bytes bytes, csr2 run $csr2_bytes bytes"
[ "$csr2_bytes" -lt "$csr_bytes" ] \
    || { echo "csr2 run is not smaller than its v1 twin"; exit 1; }

echo "== same answers from both formats (every query kind, cross-checked)"
n=1600   # n_C of the 40-vertex factor squared
{
    for v in 0 1 57 123 799 1599; do
        echo "degree $v"
        echo "neighbors $v"
        echo "tri_vertex $v"
        echo "has_edge $v $(( (v + 3) % n ))"
        echo "tri_edge $v $(( (v + 1) % n ))"
    done
} > "$work/queries.txt"
"$BIN" serve "$work/run_v1" --queries "$work/queries.txt" \
    --source cross-check > "$work/answers_v1.txt"
"$BIN" serve "$work/run_v2" --queries "$work/queries.txt" \
    --source cross-check > "$work/answers_v2.txt"
diff -u "$work/answers_v1.txt" "$work/answers_v2.txt" \
    || { echo "csr and csr2 answers diverged"; exit 1; }

echo "== compact the v1 run in place and re-verify"
"$BIN" compact "$work/run_v1" | tee "$work/compact.txt"
grep -q '4 converted' "$work/compact.txt"
ls "$work/run_v1"/*.csr 2>/dev/null \
    && { echo "compact left v1 artifacts behind"; exit 1; }
"$BIN" verify-shards "$work/run_v1" --rehash
"$BIN" serve "$work/run_v1" --queries "$work/queries.txt" \
    --source cross-check > "$work/answers_compacted.txt"
diff -u "$work/answers_v2.txt" "$work/answers_compacted.txt" \
    || { echo "compacted run diverged from the csr2-native run"; exit 1; }

echo "== compact is idempotent"
"$BIN" compact "$work/run_v1" | tee "$work/compact2.txt"
grep -q '0 converted' "$work/compact2.txt"

echo "format smoke OK (csr2 ${csr2_bytes}B vs csr ${csr_bytes}B)"
